"""Command-line interface: ``python -m repro <command> <file.ir>``.

Commands
--------

``run``      execute a textual-IR program and print its result
``fmt``      parse, verify, and pretty-print a program
``profile``  run the profilers and summarize what they found
             (``--json`` for the machine-readable summary)
``analyze``  profile, build an analysis system, and report hot-loop
             dependence coverage (optionally per-dependence detail);
             ``--workers``/``--cache-dir`` route the request through
             the serving layer, ``--json`` emits the service schema
``batch``    answer many workloads through the batched, parallel,
             cached dependence-query service (``repro.service``);
             ``--daemon ADDR`` (or ``REPRO_DAEMON``) reuses a running
             ``repro serve`` instead of spinning up a pool
``serve``    run the resident analysis daemon: a persistent worker
             fleet behind a Unix/TCP socket that many concurrent
             clients share (``repro.daemon``)
``submit``   send workloads to a running daemon and stream answers
``shutdown`` ask a running daemon to drain and exit
``stats``    summarize a trace file produced by ``analyze``/``batch``
             ``--trace`` (per-module attribution, span structure), or
             — with ``--daemon ADDR`` — a live daemon over its socket
             (``--flight`` dumps its flight recorder, ``--metrics``
             its Prometheus exposition text)
``top``      refreshing terminal dashboard over a running daemon:
             recent rates, windowed latency percentiles, per-client
             attribution, flight-recorder occupancy

``analyze`` and ``batch`` accept ``--trace out.json`` to record an
end-to-end span timeline (``repro.obs``): Chrome trace-event format
by default (open in Perfetto), JSONL when the path ends in
``.jsonl``.  A traced run also prints the per-module attribution
report; ``--trace-sample N`` records every N-th query subtree.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict
from typing import List, Optional

from .analysis import AnalysisContext
from .clients import PDGClient, hot_loops
from .core.framework import (
    build_caf,
    build_confluence,
    build_memory_speculation,
    build_scaf,
)
from .interp import CompiledInterpreter, make_interpreter
from .ir import format_module, parse_module, verify_module
from .profiling import run_profilers

SYSTEM_BUILDERS = {
    "caf": lambda m, c, p: build_caf(m, c, p),
    "confluence": lambda m, c, p: build_confluence(m, p, c),
    "scaf": lambda m, c, p: build_scaf(m, p, c),
    "memory-speculation": lambda m, c, p: build_memory_speculation(m, p, c),
}


def _load(path: str):
    with open(path) as f:
        text = f.read()
    module = parse_module(text, name=path)
    verify_module(module)
    return module


def cmd_run(args) -> int:
    module = _load(args.file)
    interp = make_interpreter(module)
    result = interp.run(args.entry)
    engine = "compiled" if isinstance(interp, CompiledInterpreter) \
        else "tree"
    print(f"result: {result}")
    print(f"instructions executed: {interp.total_instructions()} "
          f"({engine} engine)")
    return 0


def cmd_fmt(args) -> int:
    module = _load(args.file)
    sys.stdout.write(format_module(module))
    return 0


def _profile_document(args, module, profiles) -> dict:
    """The machine-readable ``profile --json`` schema."""
    hot = hot_loops(profiles)
    dead_blocks = {}
    for fn in module.defined_functions:
        dead = profiles.edge.dead_blocks(fn)
        if dead:
            dead_blocks[fn.name] = sorted(b.name for b in dead)
    predictable = [
        {"load": inst.name, "value": profiles.value.predicted_value(inst)}
        for inst, _count in profiles.value.counts.items()
        if profiles.value.is_predictable(inst)]
    separation = {}
    for h in hot:
        ro = profiles.points_to.read_only_sites(h.loop)
        sl = profiles.lifetime.short_lived_sites(h.loop)
        if ro or sl:
            separation[h.name] = {"read_only": len(ro),
                                  "short_lived": len(sl)}
    return {
        "file": args.file,
        "entry": args.entry,
        "dynamic_instructions": profiles.total_instructions,
        "exit_value": profiles.exit_value,
        "hot_loops": [
            {"name": h.name,
             "time_fraction": h.time_fraction,
             "average_trip_count": h.stats.average_trip_count}
            for h in hot],
        "profile_dead_blocks": dead_blocks,
        "predictable_loads": predictable,
        "separation_candidates": separation,
    }


def cmd_profile(args) -> int:
    module = _load(args.file)
    context = AnalysisContext(module)
    profiles = run_profilers(module, context, entry=args.entry)
    if args.json:
        print(json.dumps(_profile_document(args, module, profiles),
                         indent=2, default=str))
        return 0
    print(f"dynamic instructions: {profiles.total_instructions}")
    print(f"exit value          : {profiles.exit_value}")

    hot = hot_loops(profiles)
    print(f"\nhot loops ({len(hot)}):")
    for h in hot:
        print(f"  {h.name}: {h.time_fraction:.1%} of time, "
              f"{h.stats.average_trip_count:.0f} iters/invocation")

    for fn in module.defined_functions:
        dead = profiles.edge.dead_blocks(fn)
        if dead:
            names = ", ".join(f"%{b.name}" for b in dead)
            print(f"\nprofile-dead blocks in @{fn.name}: {names}")

    predictable = [i for i, n in profiles.value.counts.items()
                   if profiles.value.is_predictable(i)]
    if predictable:
        print(f"\npredictable loads ({len(predictable)}):")
        for load in predictable[:10]:
            print(f"  %{load.name} -> "
                  f"{profiles.value.predicted_value(load)}")

    for h in hot:
        ro = profiles.points_to.read_only_sites(h.loop)
        sl = profiles.lifetime.short_lived_sites(h.loop)
        if ro or sl:
            print(f"\nseparation candidates in {h.name}: "
                  f"{len(ro)} read-only, {len(sl)} short-lived sites")
    return 0


def _snapshot_dict(snap) -> dict:
    doc = asdict(snap)
    doc["cache_hit_rate"] = snap.cache_hit_rate
    doc["worker_utilization"] = snap.worker_utilization
    return doc


def _start_trace(args):
    """Install a live tracer when ``--trace`` was given."""
    if not getattr(args, "trace", None):
        return None
    from .obs import TraceContext, set_tracer
    tracer = TraceContext(sample_every=args.trace_sample)
    set_tracer(tracer)
    return tracer


def _finish_trace(args, tracer) -> None:
    """Export the trace and print the attribution report.

    The report is rendered from the same spans the file holds, so the
    printed per-module totals always reconcile with the artifact
    (``repro stats`` recomputes them offline).  In ``--json`` mode the
    report goes to stderr so stdout stays machine-readable.
    """
    if tracer is None:
        return
    from .obs import (
        NOOP,
        attribution_from_spans,
        render_attribution,
        set_tracer,
        write_chrome_trace,
        write_jsonl,
    )
    set_tracer(NOOP)
    spans = tracer.export()
    if args.trace.endswith(".jsonl"):
        write_jsonl(spans, args.trace)
    else:
        write_chrome_trace(spans, args.trace)
    out = sys.stderr if getattr(args, "json", False) else sys.stdout
    print(file=out)
    print(render_attribution(attribution_from_spans(spans)), file=out)
    print(f"  trace: {len(spans)} spans -> {args.trace} "
          f"(open in https://ui.perfetto.dev)", file=out)


def _print_loop_answers(answers, system: str, deps: bool = False,
                        show_all: bool = False,
                        prefix: str = "") -> None:
    """Render service-schema answers in the ``analyze`` line format."""
    for a in answers:
        suffix = "" if a.status == "computed" else f" [{a.status}]"
        print(f"{prefix}{a.loop} [{system}]: "
              f"%NoDep = {a.no_dep_percent:.2f} "
              f"({a.no_dep_count}/{a.total_queries} removed, "
              f"{a.speculative_count} speculatively){suffix}")
        if deps:
            for q in a.answers:
                if q.removed and not show_all:
                    continue
                kind = "cross" if q.cross_iteration else "intra"
                status = "removed" if q.removed else "DEP"
                mods = ""
                if q.speculative and q.contributors:
                    mods = " via " + ",".join(q.contributors)
                print(f"  [{status:7s}] ({kind}) "
                      f"{q.src} -> {q.dst}{mods}")


def _analyze_via_service(args) -> int:
    """The ``analyze --workers/--cache-dir`` path: one-request batch."""
    from .service import (
        DependenceService,
        ServiceConfig,
        loop_answer_to_dict,
        request_for_file,
    )
    workers = args.workers if args.workers is not None else 4
    config = ServiceConfig(workers=workers, executor=args.executor,
                           cache_dir=args.cache_dir,
                           cache_l2=_cache_l2(args),
                           shard_timeout_s=args.timeout,
                           incremental=not args.no_incremental,
                           mode="queue" if args.queue else "shard",
                           prepared_cache_size=args.prepared_cache_size)
    with DependenceService(config) as service:
        answers = service.analyze(request_for_file(
            args.file, entry=args.entry, system=args.system))
        snapshot = service.snapshot()
    if not answers:
        print("no hot loops found (>=10% time, >=50 iters/invocation)")
        return 1
    from .service import STATUS_FALLBACK
    degraded = all(a.status == STATUS_FALLBACK for a in answers)
    if args.json:
        print(json.dumps({
            "file": args.file,
            "entry": args.entry,
            "system": args.system,
            "loops": [loop_answer_to_dict(a) for a in answers],
            "telemetry": _snapshot_dict(snapshot),
        }, indent=2, default=str))
    else:
        _print_loop_answers(answers, args.system, args.deps, args.all)
    if degraded:
        print("analyze: every answer is a conservative fallback "
              "(worker failure or timeout)", file=sys.stderr)
        return 1
    return 0


def cmd_analyze(args) -> int:
    tracer = _start_trace(args)
    try:
        return _cmd_analyze(args)
    finally:
        _finish_trace(args, tracer)


def _cmd_analyze(args) -> int:
    if args.workers is not None or args.cache_dir:
        return _analyze_via_service(args)

    module = _load(args.file)
    context = AnalysisContext(module)
    profiles = run_profilers(module, context, entry=args.entry)
    system = SYSTEM_BUILDERS[args.system](module, context, profiles)
    client = PDGClient(system)
    from .obs import current_tracer
    tracer = current_tracer()

    hot = hot_loops(profiles)
    if not hot:
        print("no hot loops found (>=10% time, >=50 iters/invocation)")
        return 1

    if args.json:
        from .service import loop_answer_to_dict, summarize_pdg
        answers = []
        for h in hot:
            started = time.perf_counter()
            with tracer.span("loop", cat="loop", loop=h.name,
                             workload=args.file, system=args.system):
                pdg = client.analyze_loop(h.loop)
            answers.append(summarize_pdg(
                args.file, args.system, pdg, h.time_fraction,
                time.perf_counter() - started))
        print(json.dumps({
            "file": args.file,
            "entry": args.entry,
            "system": args.system,
            "loops": [loop_answer_to_dict(a) for a in answers],
        }, indent=2, default=str))
        return 0

    for h in hot:
        with tracer.span("loop", cat="loop", loop=h.name,
                         workload=args.file, system=args.system):
            pdg = client.analyze_loop(h.loop)
        speculative = sum(1 for r in pdg.records if r.speculative)
        print(f"{h.name} [{args.system}]: "
              f"%NoDep = {pdg.no_dep_percent:.2f} "
              f"({pdg.no_dep_count}/{pdg.total_queries} removed, "
              f"{speculative} speculatively)")
        if args.deps:
            for record in pdg.records:
                if record.removed and not args.all:
                    continue
                kind = "cross" if record.cross_iteration else "intra"
                status = "removed" if record.removed else "DEP"
                mods = ""
                if record.speculative:
                    option = record.usable_options.cheapest()
                    mods = " via " + ",".join(
                        sorted({a.module_id for a in option}))
                print(f"  [{status:7s}] ({kind}) "
                      f"{record.src} -> {record.dst}{mods}")
    return 0


def _daemon_addr(args) -> Optional[str]:
    """Explicit ``--daemon`` beats the ``REPRO_DAEMON`` environment."""
    return getattr(args, "daemon", None) or os.environ.get("REPRO_DAEMON")


def _cache_l2(args) -> Optional[str]:
    """Explicit ``--cache-l2`` beats ``REPRO_CACHE_L2``."""
    return (getattr(args, "cache_l2", None)
            or os.environ.get("REPRO_CACHE_L2"))


def _requests_for_targets(command: str, args) -> Optional[list]:
    """Resolve target names (workloads and/or .ir files) to requests;
    ``None`` after printing a diagnostic on bad input."""
    from .service import request_for_file, request_for_workload
    from .workloads import ALL_WORKLOADS, WORKLOADS

    targets = list(args.targets)
    if getattr(args, "all", False):
        targets = [w.name for w in ALL_WORKLOADS]
    if not targets:
        print(f"{command}: no targets (name workloads/.ir files"
              + (", or --all)" if hasattr(args, "all") else ")"),
              file=sys.stderr)
        return None

    requests = []
    for target in targets:
        if target in WORKLOADS:
            requests.append(request_for_workload(target,
                                                 system=args.system))
        elif os.path.exists(target):
            requests.append(request_for_file(target, entry=args.entry,
                                             system=args.system))
        else:
            print(f"{command}: unknown target {target!r} — not a "
                  f"workload name or an IR file (workloads: "
                  f"{', '.join(sorted(WORKLOADS))})", file=sys.stderr)
            return None
    return requests


def _snapshot_from_dict(doc: dict):
    """Rehydrate a TelemetrySnapshot from its wire dict (daemon
    ``stats``), ignoring the derived-rate extras."""
    from dataclasses import fields
    from .service import TelemetrySnapshot
    names = {f.name for f in fields(TelemetrySnapshot)}
    return TelemetrySnapshot(**{k: v for k, v in doc.items()
                                if k in names})


def _batch_via_daemon(args, requests, addr: str) -> Optional[int]:
    """Run the batch on a resident daemon; ``None`` means the daemon
    was unreachable and the caller should fall back in-process."""
    from .daemon import DaemonClient, DaemonError
    from .service import format_report, loop_answer_to_dict

    try:
        client = DaemonClient(addr)
    except (OSError, ValueError, ConnectionError) as exc:
        print(f"batch: daemon at {addr} unreachable ({exc}); "
              f"falling back to in-process pool", file=sys.stderr)
        return None
    started = time.perf_counter()
    try:
        with client:
            answers = client.run_batch(requests)
            stats = client.stats()
    except DaemonError as exc:
        print(f"batch: daemon at {addr} refused the batch ({exc})",
              file=sys.stderr)
        return 1
    wall_s = time.perf_counter() - started

    if args.json:
        print(json.dumps({
            "system": args.system,
            "wall_s": wall_s,
            "daemon": stats["daemon"],
            "loops": [loop_answer_to_dict(a) for group in answers
                      for a in group],
            "telemetry": stats["telemetry"],
        }, indent=2, default=str))
        return 0
    for request, group in zip(requests, answers):
        if not group:
            print(f"{request.name}: no hot loops")
            continue
        _print_loop_answers(group, request.system,
                            prefix=f"{request.name}/")
    print()
    print(format_report(_snapshot_from_dict(stats["telemetry"])))
    print(f"  batch wall-clock {wall_s:.2f}s "
          f"(served by daemon at {addr})")
    return 0


def cmd_batch(args) -> int:
    tracer = _start_trace(args)
    try:
        return _cmd_batch(args)
    finally:
        _finish_trace(args, tracer)


def _cmd_batch(args) -> int:
    """Serve many workloads through the batched query service."""
    from .service import (
        DependenceService,
        ServiceConfig,
        format_report,
        loop_answer_to_dict,
    )

    requests = _requests_for_targets("batch", args)
    if requests is None:
        return 2

    addr = _daemon_addr(args)
    if addr:
        status = _batch_via_daemon(args, requests, addr)
        if status is not None:
            return status

    config = ServiceConfig(workers=args.workers, executor=args.executor,
                           cache_dir=args.cache_dir,
                           cache_l2=_cache_l2(args),
                           shard_timeout_s=args.timeout,
                           incremental=not args.no_incremental,
                           mode="queue" if args.queue else "shard",
                           prepared_cache_size=args.prepared_cache_size)
    started = time.perf_counter()
    with DependenceService(config) as service:
        batch = service.run_batch(requests)
    wall_s = time.perf_counter() - started

    if args.json:
        print(json.dumps({
            "system": args.system,
            "wall_s": wall_s,
            "loops": [loop_answer_to_dict(a) for a in batch.flat()],
            "telemetry": _snapshot_dict(batch.telemetry),
        }, indent=2, default=str))
        return 0

    for request, answers in zip(requests, batch.answers):
        if not answers:
            print(f"{request.name}: no hot loops")
            continue
        _print_loop_answers(answers, request.system,
                            prefix=f"{request.name}/")
    print()
    print(format_report(batch.telemetry))
    print(f"  batch wall-clock {wall_s:.2f}s")
    return 0


def cmd_serve(args) -> int:
    """Run the resident analysis daemon until a shutdown drains it."""
    from .daemon import AnalysisDaemon, DaemonConfig
    from .service import ServiceConfig

    tracer = _start_trace(args)
    addr = args.addr or _default_daemon_addr()
    service = ServiceConfig(workers=args.workers, executor=args.executor,
                            cache_dir=args.cache_dir,
                            cache_l2=_cache_l2(args),
                            shard_timeout_s=args.timeout,
                            incremental=not args.no_incremental,
                            prepared_cache_size=args.prepared_cache_size,
                            idle_ttl_s=args.idle_ttl)
    daemon = AnalysisDaemon(DaemonConfig(
        addr=addr, service=service,
        max_queue_depth=args.max_queue_depth,
        max_client_jobs=args.max_client_jobs,
        drain_timeout_s=args.drain_timeout,
        metrics_port=args.metrics_port,
        window_s=args.window,
        slow_threshold_s=args.slow_threshold,
        flight_capacity=args.flight_capacity,
        flight_dump_path=args.flight_dump,
        log_json=args.log_json))
    print(f"repro daemon: serving at {addr} "
          f"({args.workers} workers, {args.executor} executor)",
          flush=True)
    if args.metrics_port is not None:
        print(f"repro daemon: metrics on http://127.0.0.1:"
              f"{args.metrics_port}/metrics (+/healthz)", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        _finish_trace(args, tracer)
    print("repro daemon: drained and exited")
    return 0


def cmd_submit(args) -> int:
    """Send a batch to a running daemon and stream its answers."""
    from .daemon import DaemonClient, DaemonError
    from .service import loop_answer_from_dict, loop_answer_to_dict

    addr = _daemon_addr(args) or _default_daemon_addr()
    requests = _requests_for_targets("submit", args)
    if requests is None:
        return 2
    try:
        client = DaemonClient(addr)
    except (OSError, ValueError, ConnectionError) as exc:
        print(f"submit: no daemon at {addr} ({exc}); start one with "
              f"`repro serve`", file=sys.stderr)
        return 2
    try:
        with client:
            if args.json:
                answers = client.run_batch(requests)
                print(json.dumps({
                    "system": args.system,
                    "daemon": addr,
                    "loops": [loop_answer_to_dict(a) for g in answers
                              for a in g],
                }, indent=2, default=str))
                return 0

            def show(doc):
                a = loop_answer_from_dict(doc)
                _print_loop_answers([a], args.system,
                                    prefix=f"{a.workload}/")

            client.run_batch(requests, on_answer=show)
            return 0
    except DaemonError as exc:
        kind = ("busy" if exc.busy else
                "draining" if exc.shutting_down else "error")
        print(f"submit: daemon {kind}: {exc}", file=sys.stderr)
        return 1


def cmd_shutdown(args) -> int:
    """Ask a running daemon to drain in-flight work and exit."""
    from .daemon import DaemonClient, DaemonError

    addr = _daemon_addr(args) or _default_daemon_addr()
    try:
        with DaemonClient(addr) as client:
            client.shutdown()
    except (OSError, ValueError, ConnectionError, DaemonError) as exc:
        print(f"shutdown: no daemon at {addr} ({exc})", file=sys.stderr)
        return 1
    print(f"shutdown: daemon at {addr} is draining")
    return 0


def _default_daemon_addr() -> str:
    from .daemon import DEFAULT_ADDR
    return DEFAULT_ADDR


def _stats_via_daemon(args, addr: str) -> int:
    """``repro stats --daemon``: read a live daemon over its socket."""
    from .daemon import DaemonClient, DaemonError
    from .service import format_report

    try:
        with DaemonClient(addr) as client:
            if getattr(args, "flight", False):
                print(json.dumps(client.dump(), indent=2,
                                 default=str))
                return 0
            if getattr(args, "metrics", False):
                sys.stdout.write(client.metrics())
                return 0
            stats = client.stats()
    except (OSError, ValueError, ConnectionError, DaemonError) as exc:
        print(f"stats: no daemon at {addr} ({exc})", file=sys.stderr)
        return 1
    if args.check:
        missing = [k for k in ("daemon", "telemetry") if k not in stats]
        if missing:
            print(f"stats: daemon reply missing {missing}",
                  file=sys.stderr)
            return 1
        d = stats["daemon"]
        print(f"daemon ok: pid {d['pid']} at {d['addr']}, up "
              f"{d['uptime_s']:.1f}s, {d['jobs_completed']} jobs done")
        return 0
    if args.json:
        print(json.dumps(stats, indent=2, default=str))
        return 0
    d = stats["daemon"]
    print(f"daemon at {d['addr']} (pid {d['pid']}, protocol "
          f"{d['protocol']}, up {d['uptime_s']:.1f}s)")
    print(f"  sessions {d['sessions']}, jobs active {d['jobs_active']} "
          f"/ completed {d['jobs_completed']} / shed {d['jobs_shed']}, "
          f"queue depth {d['queue_depth']}"
          + (", draining" if d["draining"] else ""))
    print()
    print(format_report(_snapshot_from_dict(stats["telemetry"])))
    clients = stats.get("clients") or {}
    if clients:
        print()
        print("per-client attribution")
        print("----------------------")
        for tag in sorted(clients):
            c = clients[tag]
            p95 = c.get("batch_latency", {}).get("p95_s", 0.0)
            print(f"  {tag:<16s} {int(c.get('requests', 0))} requests, "
                  f"{int(c.get('answers', 0))} answers, "
                  f"{int(c.get('batches', 0))} batches, "
                  f"{int(c.get('sheds', 0))} sheds, "
                  f"batch p95 {p95 * 1e3:.1f}ms")
    flight = stats.get("flight") or {}
    if flight.get("recorded"):
        print()
        print(f"flight recorder: {flight['spans']}/{flight['capacity']} "
              f"spans held, {flight['slow']} slow "
              f"(threshold {flight['slow_threshold_s']:.2f}s), "
              f"{flight['evicted']} evicted "
              f"(--flight dumps the ring as JSON)")
    return 0


def cmd_top(args) -> int:
    """``repro top``: a refreshing terminal dashboard over a live
    daemon's ``stats`` verb."""
    from .daemon import DaemonClient, DaemonError
    from .obs import render_top

    addr = _daemon_addr(args) or _default_daemon_addr()
    try:
        while True:
            try:
                with DaemonClient(addr, timeout_s=5.0) as client:
                    stats = client.stats()
            except (OSError, ValueError, ConnectionError,
                    DaemonError) as exc:
                print(f"top: no daemon at {addr} ({exc})",
                      file=sys.stderr)
                return 1
            frame = render_top(stats)
            if args.once:
                print(frame)
                return 0
            # Clear + home, then the frame: flicker-free enough
            # without curses.
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            time.sleep(max(0.2, args.interval))
    except KeyboardInterrupt:
        return 0


def cmd_stats(args) -> int:
    """Summarize (or validate) an exported trace file offline, or a
    live daemon when ``--daemon`` is given."""
    # A named trace file wins over the REPRO_DAEMON environment; an
    # explicit --daemon always wins.
    addr = getattr(args, "daemon", None) or (
        None if args.file else os.environ.get("REPRO_DAEMON"))
    if addr:
        return _stats_via_daemon(args, addr)
    if not args.file:
        print("stats: name a trace file or pass --daemon ADDR",
              file=sys.stderr)
        return 2
    from .obs import (
        load_trace,
        summarize_trace,
        trace_document,
        validate_spans,
    )
    if args.check:
        spans = load_trace(args.file)
        problems = validate_spans(spans)
        if not spans:
            print(f"stats: {args.file} holds no spans", file=sys.stderr)
            return 1
        if problems:
            for p in problems:
                print(f"stats: {p}", file=sys.stderr)
            return 1
        print(f"trace ok: {len(spans)} spans, structure valid")
        return 0
    if args.json:
        print(json.dumps(trace_document(args.file), indent=2,
                         default=str))
        return 0
    print(summarize_trace(args.file))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SCAF: speculation-aware collaborative dependence "
                    "analysis (PLDI 2020 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a textual-IR program")
    p_run.add_argument("file")
    p_run.add_argument("--entry", default="main")
    p_run.add_argument("--no-compile", action="store_true",
                       help="force the tree-walking interpreter (skip "
                            "closure compilation)")
    p_run.set_defaults(func=cmd_run)

    p_fmt = sub.add_parser("fmt", help="parse, verify, pretty-print")
    p_fmt.add_argument("file")
    p_fmt.set_defaults(func=cmd_fmt)

    p_prof = sub.add_parser("profile", help="run the profilers")
    p_prof.add_argument("file")
    p_prof.add_argument("--entry", default="main")
    p_prof.add_argument("--json", action="store_true",
                        help="machine-readable profiler summary")
    p_prof.add_argument("--no-compile", action="store_true",
                        help="force the tree-walking interpreter (skip "
                             "closure compilation)")
    p_prof.set_defaults(func=cmd_profile)

    p_an = sub.add_parser("analyze", help="hot-loop dependence coverage")
    p_an.add_argument("file")
    p_an.add_argument("--entry", default="main")
    p_an.add_argument("--system", choices=sorted(SYSTEM_BUILDERS),
                      default="scaf")
    p_an.add_argument("--deps", action="store_true",
                      help="list residual dependences")
    p_an.add_argument("--all", action="store_true",
                      help="with --deps, also list removed dependences")
    p_an.add_argument("--json", action="store_true",
                      help="emit the service's LoopAnswer schema")
    p_an.add_argument("--workers", type=int, default=None,
                      help="route through the serving layer with this "
                           "many pool workers")
    p_an.add_argument("--cache-dir", default=None,
                      help="persistent result-cache directory "
                           "(implies the serving layer)")
    p_an.add_argument("--cache-l2", default=None, metavar="URL",
                      help="remote L2 cache tier (redis://host:port; "
                           "the REPRO_CACHE_L2 environment variable "
                           "works too); requires --cache-dir")
    p_an.add_argument("--executor",
                      choices=("process", "thread", "inline"),
                      default="process")
    p_an.add_argument("--timeout", type=float, default=None,
                      help="per-shard deadline in seconds")
    p_an.add_argument("--no-incremental", action="store_true",
                      help="disable footprint-based incremental reuse "
                           "of cached answers across module edits")
    p_an.add_argument("--queue", action=argparse.BooleanOptionalAction,
                      default=True,
                      help="global loop-granular work queue "
                           "(--no-queue falls back to per-request "
                           "shards)")
    p_an.add_argument("--prepared-cache-size", type=int, default=None,
                      metavar="N",
                      help="worker-resident prepared-module LRU "
                           "capacity (queue mode)")
    p_an.add_argument("--trace", default=None, metavar="PATH",
                      help="record a span timeline (Chrome trace-event "
                           "format; JSONL when PATH ends in .jsonl)")
    p_an.add_argument("--trace-sample", type=int, default=1, metavar="N",
                      help="record every N-th query subtree (default 1)")
    p_an.add_argument("--no-compile", action="store_true",
                      help="force the tree-walking interpreter (skip "
                           "closure compilation)")
    p_an.add_argument("--no-cost-model", action="store_true",
                      help="schedule by the static LPT estimate "
                           "instead of measured-duration predictions "
                           "(the REPRO_NO_COST_MODEL environment "
                           "variable works too)")
    p_an.set_defaults(func=cmd_analyze)

    p_batch = sub.add_parser(
        "batch",
        help="batched, parallel, cached dependence-query service")
    p_batch.add_argument("targets", nargs="*",
                         help="workload names (see repro.workloads) "
                              "and/or .ir files")
    p_batch.add_argument("--all", action="store_true",
                         help="serve all 16 registered workloads")
    p_batch.add_argument("--entry", default="main",
                         help="entry function for .ir file targets")
    p_batch.add_argument("--system", choices=sorted(SYSTEM_BUILDERS),
                         default="scaf")
    p_batch.add_argument("--workers", type=int, default=4)
    p_batch.add_argument("--executor",
                         choices=("process", "thread", "inline"),
                         default="process")
    p_batch.add_argument("--cache-dir", default=None,
                         help="persistent result-cache directory")
    p_batch.add_argument("--cache-l2", default=None, metavar="URL",
                         help="remote L2 cache tier (redis://host:port; "
                              "the REPRO_CACHE_L2 environment variable "
                              "works too); requires --cache-dir")
    p_batch.add_argument("--timeout", type=float, default=None,
                         help="per-shard deadline in seconds")
    p_batch.add_argument("--json", action="store_true",
                         help="emit answers + telemetry as JSON")
    p_batch.add_argument("--no-incremental", action="store_true",
                         help="disable footprint-based incremental "
                              "reuse of cached answers across edits")
    p_batch.add_argument("--queue",
                         action=argparse.BooleanOptionalAction,
                         default=True,
                         help="global loop-granular work queue "
                              "(--no-queue falls back to per-request "
                              "shards)")
    p_batch.add_argument("--prepared-cache-size", type=int,
                         default=None, metavar="N",
                         help="worker-resident prepared-module LRU "
                              "capacity (queue mode)")
    p_batch.add_argument("--trace", default=None, metavar="PATH",
                         help="record a span timeline (Chrome "
                              "trace-event format; JSONL when PATH "
                              "ends in .jsonl)")
    p_batch.add_argument("--trace-sample", type=int, default=1,
                         metavar="N",
                         help="record every N-th query subtree "
                              "(default 1)")
    p_batch.add_argument("--daemon", default=None, metavar="ADDR",
                         help="reuse a running `repro serve` at ADDR "
                              "(unix:/path.sock or host:port; the "
                              "REPRO_DAEMON environment variable works "
                              "too); falls back to the in-process pool "
                              "if unreachable")
    p_batch.add_argument("--no-compile", action="store_true",
                         help="force the tree-walking interpreter "
                              "(skip closure compilation)")
    p_batch.add_argument("--no-cost-model", action="store_true",
                         help="schedule by the static LPT estimate "
                              "instead of measured-duration "
                              "predictions (the REPRO_NO_COST_MODEL "
                              "environment variable works too)")
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="resident analysis daemon: persistent worker fleet "
             "behind a socket")
    p_serve.add_argument("--addr", default=None,
                         help="listen address (unix:/path.sock or "
                              "host:port; default unix socket in cwd)")
    p_serve.add_argument("--workers", type=int, default=4)
    p_serve.add_argument("--executor",
                         choices=("process", "thread", "inline"),
                         default="process")
    p_serve.add_argument("--cache-dir", default=None,
                         help="persistent result-cache directory")
    p_serve.add_argument("--cache-l2", default=None, metavar="URL",
                         help="remote L2 cache tier shared by the "
                              "daemon fleet (redis://host:port; the "
                              "REPRO_CACHE_L2 environment variable "
                              "works too); requires --cache-dir")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-shard deadline in seconds")
    p_serve.add_argument("--no-incremental", action="store_true",
                         help="disable footprint-based incremental "
                              "reuse of cached answers across edits")
    p_serve.add_argument("--prepared-cache-size", type=int,
                         default=None, metavar="N",
                         help="worker-resident prepared-module LRU "
                              "capacity")
    p_serve.add_argument("--idle-ttl", type=float, default=None,
                         metavar="SECONDS",
                         help="tear idle workers down after this long "
                              "and respawn lazily on the next task")
    p_serve.add_argument("--max-queue-depth", type=int, default=256,
                         help="shed submits with BUSY beyond this "
                              "engine queue depth")
    p_serve.add_argument("--max-client-jobs", type=int, default=4,
                         help="per-session in-flight job window")
    p_serve.add_argument("--drain-timeout", type=float, default=60.0,
                         help="seconds shutdown waits for in-flight "
                              "jobs")
    p_serve.add_argument("--trace", default=None, metavar="PATH",
                         help="record the daemon's span timeline on "
                              "exit (all sessions, one tree)")
    p_serve.add_argument("--trace-sample", type=int, default=1,
                         metavar="N")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         metavar="PORT",
                         help="serve GET /metrics (Prometheus text) "
                              "and /healthz over plain HTTP on this "
                              "port (0 binds an ephemeral port)")
    p_serve.add_argument("--window", type=float, default=60.0,
                         metavar="SECONDS",
                         help="rolling window for recent rates and "
                              "latency percentiles (default 60s)")
    p_serve.add_argument("--slow-threshold", type=float, default=1.0,
                         metavar="SECONDS",
                         help="tasks at or above this latency land in "
                              "the flight recorder's slow-query log")
    p_serve.add_argument("--flight-capacity", type=int, default=256,
                         metavar="N",
                         help="flight-recorder ring size (completed "
                              "query spans held for dumps)")
    p_serve.add_argument("--flight-dump", default=None, metavar="PATH",
                         help="auto-dump the flight recorder here on "
                              "task failure/timeout and on drain")
    p_serve.add_argument("--log-json", action="store_true",
                         help="emit NDJSON lifecycle events (sheds, "
                              "recycles, L2 cooldowns, drain) on "
                              "stderr")
    p_serve.add_argument("--no-compile", action="store_true",
                         help="force the tree-walking interpreter "
                              "(skip closure compilation)")
    p_serve.add_argument("--no-cost-model", action="store_true",
                         help="schedule by the static LPT estimate "
                              "instead of measured-duration "
                              "predictions (the REPRO_NO_COST_MODEL "
                              "environment variable works too)")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="send workloads to a running daemon and stream answers")
    p_submit.add_argument("targets", nargs="*",
                          help="workload names and/or .ir files")
    p_submit.add_argument("--all", action="store_true",
                          help="submit all 16 registered workloads")
    p_submit.add_argument("--entry", default="main",
                          help="entry function for .ir file targets")
    p_submit.add_argument("--system", choices=sorted(SYSTEM_BUILDERS),
                          default="scaf")
    p_submit.add_argument("--daemon", default=None, metavar="ADDR",
                          help="daemon address (default REPRO_DAEMON "
                               "or the default unix socket)")
    p_submit.add_argument("--json", action="store_true",
                          help="emit answers as JSON")
    p_submit.set_defaults(func=cmd_submit)

    p_down = sub.add_parser(
        "shutdown", help="ask a running daemon to drain and exit")
    p_down.add_argument("--daemon", default=None, metavar="ADDR",
                        help="daemon address (default REPRO_DAEMON or "
                             "the default unix socket)")
    p_down.set_defaults(func=cmd_shutdown)

    p_stats = sub.add_parser(
        "stats",
        help="summarize a --trace file (attribution, span structure) "
             "or a live daemon (--daemon)")
    p_stats.add_argument("file", nargs="?", default=None,
                         help="trace file from analyze/batch --trace")
    p_stats.add_argument("--json", action="store_true",
                         help="machine-readable summary")
    p_stats.add_argument("--check", action="store_true",
                         help="validate only: exit nonzero unless the "
                              "trace parses and spans nest correctly "
                              "(with --daemon: the daemon answers "
                              "sanely)")
    p_stats.add_argument("--daemon", default=None, metavar="ADDR",
                         help="summarize a live daemon over its "
                              "socket instead of a trace file")
    p_stats.add_argument("--flight", action="store_true",
                         help="with --daemon: print the flight "
                              "recorder's dump (recent + slow query "
                              "spans) as JSON")
    p_stats.add_argument("--metrics", action="store_true",
                         help="with --daemon: print the Prometheus "
                              "exposition text")
    p_stats.set_defaults(func=cmd_stats)

    p_top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running daemon")
    p_top.add_argument("--daemon", default=None, metavar="ADDR",
                       help="daemon address (default REPRO_DAEMON or "
                            "the default unix socket)")
    p_top.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="refresh period (default 2s)")
    p_top.add_argument("--once", action="store_true",
                       help="print one frame and exit (no screen "
                            "clearing; scripts and tests)")
    p_top.set_defaults(func=cmd_top)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "no_compile", False):
        # The env var (not set_compilation_enabled) so the choice
        # survives into ProcessPoolExecutor workers.
        os.environ["REPRO_NO_COMPILE"] = "1"
    if getattr(args, "no_cost_model", False):
        # Same env-var route: the scheduler reads it at construction,
        # wherever the service gets built (in-process or daemon).
        os.environ["REPRO_NO_COST_MODEL"] = "1"
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
