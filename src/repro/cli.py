"""Command-line interface: ``python -m repro <command> <file.ir>``.

Commands
--------

``run``      execute a textual-IR program and print its result
``fmt``      parse, verify, and pretty-print a program
``profile``  run the profilers and summarize what they found
``analyze``  profile, build an analysis system, and report hot-loop
             dependence coverage (optionally per-dependence detail)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import AnalysisContext
from .clients import PDGClient, hot_loops
from .core.framework import (
    build_caf,
    build_confluence,
    build_memory_speculation,
    build_scaf,
)
from .interp import Interpreter
from .ir import format_module, parse_module, verify_module
from .profiling import run_profilers

SYSTEM_BUILDERS = {
    "caf": lambda m, c, p: build_caf(m, c, p),
    "confluence": lambda m, c, p: build_confluence(m, p, c),
    "scaf": lambda m, c, p: build_scaf(m, p, c),
    "memory-speculation": lambda m, c, p: build_memory_speculation(m, p, c),
}


def _load(path: str):
    with open(path) as f:
        text = f.read()
    module = parse_module(text, name=path)
    verify_module(module)
    return module


def cmd_run(args) -> int:
    module = _load(args.file)
    interp = Interpreter(module)
    result = interp.run(args.entry)
    print(f"result: {result}")
    print(f"instructions executed: {interp.total_instructions()}")
    return 0


def cmd_fmt(args) -> int:
    module = _load(args.file)
    sys.stdout.write(format_module(module))
    return 0


def cmd_profile(args) -> int:
    module = _load(args.file)
    context = AnalysisContext(module)
    profiles = run_profilers(module, context, entry=args.entry)
    print(f"dynamic instructions: {profiles.total_instructions}")
    print(f"exit value          : {profiles.exit_value}")

    hot = hot_loops(profiles)
    print(f"\nhot loops ({len(hot)}):")
    for h in hot:
        print(f"  {h.name}: {h.time_fraction:.1%} of time, "
              f"{h.stats.average_trip_count:.0f} iters/invocation")

    for fn in module.defined_functions:
        dead = profiles.edge.dead_blocks(fn)
        if dead:
            names = ", ".join(f"%{b.name}" for b in dead)
            print(f"\nprofile-dead blocks in @{fn.name}: {names}")

    predictable = [i for i, n in profiles.value.counts.items()
                   if profiles.value.is_predictable(i)]
    if predictable:
        print(f"\npredictable loads ({len(predictable)}):")
        for load in predictable[:10]:
            print(f"  %{load.name} -> "
                  f"{profiles.value.predicted_value(load)}")

    for h in hot:
        ro = profiles.points_to.read_only_sites(h.loop)
        sl = profiles.lifetime.short_lived_sites(h.loop)
        if ro or sl:
            print(f"\nseparation candidates in {h.name}: "
                  f"{len(ro)} read-only, {len(sl)} short-lived sites")
    return 0


def cmd_analyze(args) -> int:
    module = _load(args.file)
    context = AnalysisContext(module)
    profiles = run_profilers(module, context, entry=args.entry)
    system = SYSTEM_BUILDERS[args.system](module, context, profiles)
    client = PDGClient(system)

    hot = hot_loops(profiles)
    if not hot:
        print("no hot loops found (>=10% time, >=50 iters/invocation)")
        return 1

    for h in hot:
        pdg = client.analyze_loop(h.loop)
        speculative = sum(1 for r in pdg.records if r.speculative)
        print(f"{h.name} [{args.system}]: "
              f"%NoDep = {pdg.no_dep_percent:.2f} "
              f"({pdg.no_dep_count}/{pdg.total_queries} removed, "
              f"{speculative} speculatively)")
        if args.deps:
            for record in pdg.records:
                if record.removed and not args.all:
                    continue
                kind = "cross" if record.cross_iteration else "intra"
                status = "removed" if record.removed else "DEP"
                mods = ""
                if record.speculative:
                    option = record.usable_options.cheapest()
                    mods = " via " + ",".join(
                        sorted({a.module_id for a in option}))
                print(f"  [{status:7s}] ({kind}) "
                      f"{record.src} -> {record.dst}{mods}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SCAF: speculation-aware collaborative dependence "
                    "analysis (PLDI 2020 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a textual-IR program")
    p_run.add_argument("file")
    p_run.add_argument("--entry", default="main")
    p_run.set_defaults(func=cmd_run)

    p_fmt = sub.add_parser("fmt", help="parse, verify, pretty-print")
    p_fmt.add_argument("file")
    p_fmt.set_defaults(func=cmd_fmt)

    p_prof = sub.add_parser("profile", help="run the profilers")
    p_prof.add_argument("file")
    p_prof.add_argument("--entry", default="main")
    p_prof.set_defaults(func=cmd_profile)

    p_an = sub.add_parser("analyze", help="hot-loop dependence coverage")
    p_an.add_argument("file")
    p_an.add_argument("--entry", default="main")
    p_an.add_argument("--system", choices=sorted(SYSTEM_BUILDERS),
                      default="scaf")
    p_an.add_argument("--deps", action="store_true",
                      help="list residual dependences")
    p_an.add_argument("--all", action="store_true",
                      help="with --deps, also list removed dependences")
    p_an.set_defaults(func=cmd_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
