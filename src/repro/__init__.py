"""SCAF: a Speculation-Aware Collaborative dependence Analysis Framework.

A from-scratch Python reproduction of Apostolakis et al., PLDI 2020.
The package builds everything the paper's system needs: a typed IR
with parser/printer, CFG/dominator/loop/SCEV analyses, an interpreter
with profiling hooks, the profilers, the query language with
speculative assertions, the Orchestrator, thirteen memory-analysis
modules, six speculation modules, the memory-speculation baseline,
and the PDG client with the %NoDep metric.

Quickstart::

    from repro import ir, build_scaf, run_profilers
    from repro.clients import PDGClient, hot_loops

    module = ir.parse_module(source_text)
    profiles = run_profilers(module)
    scaf = build_scaf(module, profiles)
    client = PDGClient(scaf)
    for hot in hot_loops(profiles):
        pdg = client.analyze_loop(hot.loop)
        print(hot.name, f"{pdg.no_dep_percent:.1f}% NoDep")
"""

# Defined before the subpackage imports: repro.service fingerprints
# cache keys with the framework version at import time.
__version__ = "1.1.0"

from . import analysis, clients, core, interp, ir, modules, profiling, query
from . import service
from .core import (
    DependenceAnalysis,
    Orchestrator,
    OrchestratorConfig,
    build_caf,
    build_confluence,
    build_memory_speculation,
    build_scaf,
)
from .profiling import ProfileBundle, run_profilers

__all__ = [
    "analysis", "clients", "core", "interp", "ir", "modules",
    "profiling", "query", "service",
    "DependenceAnalysis", "Orchestrator", "OrchestratorConfig",
    "build_caf", "build_confluence", "build_memory_speculation",
    "build_scaf", "ProfileBundle", "run_profilers",
    "__version__",
]
