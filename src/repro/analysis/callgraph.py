"""Call graph construction and bottom-up traversal order."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir import CallInst, Function, Module


class CallGraph:
    """Direct-call graph of a module.

    The IR has no indirect calls, so the graph is exact.  Declarations
    (external functions) appear as leaves.
    """

    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[Function, Set[Function]] = {}
        self.callers: Dict[Function, Set[Function]] = {}
        self.callsites: Dict[Function, List[CallInst]] = {}
        for fn in module.functions.values():
            self.callees[fn] = set()
            self.callers.setdefault(fn, set())
            self.callsites[fn] = []
        for fn in module.defined_functions:
            for inst in fn.instructions():
                if isinstance(inst, CallInst):
                    callee = inst.callee
                    self.callees[fn].add(callee)
                    self.callers.setdefault(callee, set()).add(fn)
                    self.callsites.setdefault(callee, []).append(inst)

    def callees_of(self, fn: Function) -> Set[Function]:
        return self.callees.get(fn, set())

    def callers_of(self, fn: Function) -> Set[Function]:
        return self.callers.get(fn, set())

    def callsites_of(self, fn: Function) -> List[CallInst]:
        return self.callsites.get(fn, [])

    def reachable_from(self, fn: Function) -> Set[Function]:
        """``fn`` plus every function transitively callable from it.

        This is the static half of a loop's *dependence footprint*: any
        analysis of code inside ``fn`` may descend into these bodies
        (callsite analysis, kill-flow across calls, ...), so a cached
        answer stays valid only while they are all unchanged.
        """
        seen: Set[Function] = {fn}
        work = [fn]
        while work:
            for callee in self.callees_of(work.pop()):
                if callee not in seen:
                    seen.add(callee)
                    work.append(callee)
        return seen

    def is_recursive(self, fn: Function) -> bool:
        """True if ``fn`` can (transitively) call itself."""
        seen: Set[Function] = set()
        work = list(self.callees_of(fn))
        while work:
            g = work.pop()
            if g is fn:
                return True
            if g in seen:
                continue
            seen.add(g)
            work.extend(self.callees_of(g))
        return False

    def bottom_up(self) -> List[Function]:
        """Functions ordered callees-first (cycles broken arbitrarily)."""
        order: List[Function] = []
        state: Dict[Function, int] = {}  # 0 = visiting, 1 = done

        def visit(fn: Function) -> None:
            stack = [(fn, iter(sorted(self.callees_of(fn),
                                      key=lambda f: f.name)))]
            state[fn] = 0
            while stack:
                cur, it = stack[-1]
                advanced = False
                for callee in it:
                    if callee not in state:
                        state[callee] = 0
                        stack.append(
                            (callee, iter(sorted(self.callees_of(callee),
                                                 key=lambda f: f.name))))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    state[cur] = 1
                    order.append(cur)

        for fn in self.module.functions.values():
            if fn not in state:
                visit(fn)
        return order

    def __repr__(self) -> str:
        edges = sum(len(c) for c in self.callees.values())
        return f"<CallGraph {len(self.callees)} functions, {edges} edges>"
