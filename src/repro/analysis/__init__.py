"""Static analyses over the repro IR: CFG, dominators, loops, call graph, SCEV."""

from .cfg import (
    back_edges,
    is_reachable,
    predecessors,
    reachable_blocks,
    reverse_postorder,
    successors,
)
from .callgraph import CallGraph
from .context import AnalysisContext
from .dominators import DominatorTree
from .loops import Loop, LoopInfo
from .scev import (
    SCEV,
    SCEVAdd,
    SCEVAddRec,
    SCEVConstant,
    SCEVMul,
    SCEVUnknown,
    ScalarEvolution,
    affine_parts,
    scev_add,
    scev_mul,
    scev_neg,
)

__all__ = [
    "back_edges", "is_reachable", "predecessors", "reachable_blocks",
    "reverse_postorder", "successors",
    "CallGraph", "AnalysisContext", "DominatorTree", "Loop", "LoopInfo",
    "SCEV", "SCEVAdd", "SCEVAddRec", "SCEVConstant", "SCEVMul", "SCEVUnknown",
    "ScalarEvolution", "affine_parts", "scev_add", "scev_mul", "scev_neg",
]
