"""Dominator and post-dominator trees.

Implemented with the iterative algorithm of Cooper, Harvey & Kennedy
("A Simple, Fast Dominance Algorithm").  Both trees accept an
``ignore`` set of blocks, allowing the control-speculation module to
build *speculative* trees over the CFG minus profiler-dead blocks —
the paper's mechanism (§3.2.2) for communicating speculative control
flow to other analysis modules.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from ..ir import BasicBlock, Function, Instruction
from .cfg import predecessors, reverse_postorder, successors


class DominatorTree:
    """Immediate-dominator tree over a function's CFG.

    ``is_post`` selects post-domination: the tree is computed over the
    reversed CFG with a virtual exit joining all return blocks.
    """

    def __init__(self, fn: Function, idom: Dict[BasicBlock, Optional[BasicBlock]],
                 is_post: bool, ignore: FrozenSet[BasicBlock]):
        self.function = fn
        self.idom = idom
        self.is_post = is_post
        self.ignore = ignore
        self._depth: Dict[BasicBlock, int] = {}
        for bb in idom:
            self._depth[bb] = self._compute_depth(bb)

    # -- construction ------------------------------------------------------

    @classmethod
    def compute(cls, fn: Function,
                ignore: FrozenSet[BasicBlock] = frozenset(),
                post: bool = False) -> "DominatorTree":
        if post:
            return cls._compute_post(fn, ignore)
        return cls._compute_forward(fn, ignore)

    @classmethod
    def _compute_forward(cls, fn: Function,
                         ignore: FrozenSet[BasicBlock]) -> "DominatorTree":
        order = reverse_postorder(fn, ignore)
        index = {bb: i for i, bb in enumerate(order)}
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        if not order:
            return cls(fn, idom, False, ignore)
        entry = order[0]
        idom[entry] = None

        changed = True
        while changed:
            changed = False
            for bb in order[1:]:
                preds = [p for p in predecessors(bb, ignore) if p in index]
                new_idom: Optional[BasicBlock] = None
                for p in preds:
                    if p is entry or p in idom:
                        if new_idom is None:
                            new_idom = p
                        else:
                            new_idom = _intersect(p, new_idom, idom, index)
                if new_idom is not None and idom.get(bb, "∅") != new_idom:
                    idom[bb] = new_idom
                    changed = True
        return cls(fn, idom, False, ignore)

    @classmethod
    def _compute_post(cls, fn: Function,
                      ignore: FrozenSet[BasicBlock]) -> "DominatorTree":
        """Post-dominators via the same algorithm on the reversed CFG."""
        from .cfg import reachable_blocks
        blocks = [b for b in reachable_blocks(fn, ignore)]
        exits = [b for b in blocks if not successors(b, ignore)]

        # Postorder of the reversed CFG, starting from a virtual exit.
        rsuccs: Dict[BasicBlock, List[BasicBlock]] = {
            b: predecessors(b, ignore) for b in blocks}
        visited: Set[BasicBlock] = set()
        postorder: List[BasicBlock] = []

        def visit(start: BasicBlock) -> None:
            stack = [(start, 0)]
            visited.add(start)
            while stack:
                block, idx = stack.pop()
                nexts = rsuccs.get(block, [])
                if idx < len(nexts):
                    stack.append((block, idx + 1))
                    nxt = nexts[idx]
                    if nxt not in visited and nxt in rsuccs:
                        visited.add(nxt)
                        stack.append((nxt, 0))
                else:
                    postorder.append(block)

        for e in exits:
            if e not in visited:
                visit(e)
        order = list(reversed(postorder))

        VIRTUAL = None  # virtual exit is represented by None
        index = {bb: i for i, bb in enumerate(order)}
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        for e in exits:
            idom[e] = VIRTUAL

        changed = True
        while changed:
            changed = False
            for bb in order:
                if bb in exits:
                    continue
                preds = [s for s in successors(bb, ignore) if s in index]
                new_idom: Optional[BasicBlock] = None
                seeded = False
                for p in preds:
                    if p in idom:
                        if not seeded:
                            new_idom = p
                            seeded = True
                        else:
                            new_idom = _intersect_post(
                                p, new_idom, idom, index)
                if seeded and idom.get(bb, "∅") != new_idom:
                    idom[bb] = new_idom
                    changed = True
        return cls(fn, idom, True, ignore)

    # -- queries --------------------------------------------------------------

    def _compute_depth(self, bb: BasicBlock) -> int:
        if bb in self._depth:
            return self._depth[bb]
        depth = 0
        cur: Optional[BasicBlock] = bb
        chain = []
        while cur is not None and cur not in self._depth:
            chain.append(cur)
            cur = self.idom.get(cur)
        base = self._depth.get(cur, 0) if cur is not None else 0
        for i, b in enumerate(reversed(chain)):
            self._depth[b] = base + i + 1
        return self._depth[bb]

    def contains(self, bb: BasicBlock) -> bool:
        """True if ``bb`` participates in the (possibly pruned) CFG."""
        return bb in self.idom

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` (post-)dominates ``b`` (reflexively)."""
        if a is b:
            return self.contains(a)
        if not self.contains(a) or not self.contains(b):
            return False
        cur: Optional[BasicBlock] = self.idom.get(b)
        while cur is not None:
            if cur is a:
                return True
            cur = self.idom.get(cur)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominates_instruction(self, a: Instruction, b: Instruction) -> bool:
        """Instruction-level (post-)domination.

        Within a block, the earlier instruction dominates the later one
        (reversed for post-domination).
        """
        if a.parent is b.parent:
            block = a.parent
            ia = block.instructions.index(a)
            ib = block.instructions.index(b)
            return ia >= ib if self.is_post else ia <= ib
        return self.dominates(a.parent, b.parent)

    def children(self, bb: BasicBlock) -> List[BasicBlock]:
        return [b for b, p in self.idom.items() if p is bb]

    def __repr__(self) -> str:
        kind = "PostDominatorTree" if self.is_post else "DominatorTree"
        return f"<{kind} @{self.function.name} ({len(self.idom)} blocks)>"


def _intersect(b1: BasicBlock, b2: BasicBlock,
               idom: Dict[BasicBlock, Optional[BasicBlock]],
               index: Dict[BasicBlock, int]) -> BasicBlock:
    while b1 is not b2:
        while index[b1] > index[b2]:
            b1 = idom[b1]
        while index[b2] > index[b1]:
            b2 = idom[b2]
    return b1


def _intersect_post(b1: Optional[BasicBlock], b2: Optional[BasicBlock],
                    idom: Dict[BasicBlock, Optional[BasicBlock]],
                    index: Dict[BasicBlock, int]) -> Optional[BasicBlock]:
    # None is the virtual exit, the root of the post-dominator tree.
    while b1 is not b2:
        if b1 is None or b2 is None:
            return None
        while b1 is not None and b2 is not None and index[b1] > index[b2]:
            b1 = idom[b1]
        if b1 is b2:
            break
        while b2 is not None and b1 is not None and index[b2] > index[b1]:
            b2 = idom[b2]
    return b1
