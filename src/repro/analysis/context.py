"""AnalysisContext: cached static analyses over one module.

Every analysis module (memory or speculation) receives the same
context, so dominator trees, loop info, SCEV, and the call graph are
computed once per module and shared.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..ir import BasicBlock, Function, Module
from .callgraph import CallGraph
from .dominators import DominatorTree
from .loops import LoopInfo
from .scev import ScalarEvolution


class AnalysisContext:
    """Lazily-computed, memoized static analyses for a module."""

    def __init__(self, module: Module):
        self.module = module
        self._callgraph: Optional[CallGraph] = None
        self._dom: Dict[Tuple[int, FrozenSet[BasicBlock], bool],
                        DominatorTree] = {}
        self._loops: Dict[int, LoopInfo] = {}
        self._scev: Dict[int, ScalarEvolution] = {}
        self._scan_trace: Set[Tuple[str, str]] = set()

    # -- scan tracing ------------------------------------------------------
    #
    # Whole-module sweeps (a global's user scan, separation-site
    # enumeration) consult state outside the caller's reachable
    # functions.  Analyses record what they swept here so the service
    # layer can put exactly those entities — not the entire module
    # header — into a cached answer's dependence footprint.

    def note_scan(self, kind: str, name: str) -> None:
        """Record that the current analysis swept ``kind``/``name``
        (e.g. ``("global", "counter")`` for a users-of-global scan or
        ``("function", "helper")`` for a profile-site anchor)."""
        self._scan_trace.add((kind, name))

    def reset_scan_trace(self) -> None:
        """Clear the trace before analysing a new loop."""
        self._scan_trace = set()

    def scan_trace(self) -> FrozenSet[Tuple[str, str]]:
        """Everything swept since the last :meth:`reset_scan_trace`."""
        return frozenset(self._scan_trace)

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(self.module)
        return self._callgraph

    def dominator_tree(self, fn: Function,
                       ignore: FrozenSet[BasicBlock] = frozenset(),
                       post: bool = False) -> DominatorTree:
        key = (id(fn), ignore, post)
        if key not in self._dom:
            self._dom[key] = DominatorTree.compute(fn, ignore=ignore, post=post)
        return self._dom[key]

    def post_dominator_tree(self, fn: Function,
                            ignore: FrozenSet[BasicBlock] = frozenset()
                            ) -> DominatorTree:
        return self.dominator_tree(fn, ignore=ignore, post=True)

    def loop_info(self, fn: Function) -> LoopInfo:
        key = id(fn)
        if key not in self._loops:
            self._loops[key] = LoopInfo.compute(fn)
        return self._loops[key]

    def scalar_evolution(self, fn: Function) -> ScalarEvolution:
        key = id(fn)
        if key not in self._scev:
            self._scev[key] = ScalarEvolution(self.loop_info(fn))
        return self._scev[key]

    def users_of(self, value) -> list:
        """All instructions in the module using ``value`` as an operand.

        Phi incoming values are included.  The index is built once and
        reused; analyses must not mutate the module afterwards.
        """
        if not hasattr(self, "_users"):
            users: Dict[int, list] = {}
            for fn in self.module.defined_functions:
                for inst in fn.instructions():
                    for op in inst.operands:
                        users.setdefault(id(op), []).append(inst)
            self._users = users
        return self._users.get(id(value), [])
