"""CFG utilities: orderings, reachability, and edge classification.

All functions operate on :class:`repro.ir.BasicBlock` graphs; several
accept an ``ignore`` set of blocks, which is how speculative control
flow (blocks asserted dead by the control-speculation module) is
threaded through without the algorithms knowing about speculation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir import BasicBlock, Function


def successors(block: BasicBlock,
               ignore: FrozenSet[BasicBlock] = frozenset()) -> List[BasicBlock]:
    """CFG successors of ``block``, skipping ignored blocks."""
    return [s for s in block.successors if s not in ignore]


def predecessors(block: BasicBlock,
                 ignore: FrozenSet[BasicBlock] = frozenset()) -> List[BasicBlock]:
    """CFG predecessors of ``block``, skipping ignored blocks."""
    return [p for p in block.predecessors if p not in ignore]


def reverse_postorder(fn: Function,
                      ignore: FrozenSet[BasicBlock] = frozenset()
                      ) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry (ignored blocks omitted)."""
    visited: Set[BasicBlock] = set()
    postorder: List[BasicBlock] = []

    def visit(bb: BasicBlock) -> None:
        # Iterative DFS to avoid recursion limits on long CFG chains.
        stack: List[Tuple[BasicBlock, int]] = [(bb, 0)]
        visited.add(bb)
        while stack:
            block, idx = stack.pop()
            succs = successors(block, ignore)
            if idx < len(succs):
                stack.append((block, idx + 1))
                succ = succs[idx]
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, 0))
            else:
                postorder.append(block)

    if fn.blocks and fn.entry not in ignore:
        visit(fn.entry)
    return list(reversed(postorder))


def reachable_blocks(fn: Function,
                     ignore: FrozenSet[BasicBlock] = frozenset()
                     ) -> Set[BasicBlock]:
    """Blocks reachable from the entry, not passing through ignored blocks."""
    if not fn.blocks or fn.entry in ignore:
        return set()
    seen: Set[BasicBlock] = {fn.entry}
    work = [fn.entry]
    while work:
        bb = work.pop()
        for succ in successors(bb, ignore):
            if succ not in seen:
                seen.add(succ)
                work.append(succ)
    return seen


def is_reachable(src: BasicBlock, dst: BasicBlock,
                 ignore: FrozenSet[BasicBlock] = frozenset(),
                 exclude_start: bool = False) -> bool:
    """True if there is a CFG path from ``src`` to ``dst``.

    With ``exclude_start``, the path must have at least one edge
    (so ``is_reachable(b, b, exclude_start=True)`` asks whether ``b``
    lies on a cycle).
    """
    if src in ignore or dst in ignore:
        return False
    if src is dst and not exclude_start:
        return True
    seen: Set[BasicBlock] = set()
    work = list(successors(src, ignore))
    while work:
        bb = work.pop()
        if bb is dst:
            return True
        if bb in seen:
            continue
        seen.add(bb)
        work.extend(successors(bb, ignore))
    return False


def back_edges(fn: Function,
               ignore: FrozenSet[BasicBlock] = frozenset()
               ) -> List[Tuple[BasicBlock, BasicBlock]]:
    """Edges (tail, head) where head dominates tail — natural-loop back edges."""
    from .dominators import DominatorTree
    domtree = DominatorTree.compute(fn, ignore=ignore)
    edges: List[Tuple[BasicBlock, BasicBlock]] = []
    for bb in reachable_blocks(fn, ignore):
        for succ in successors(bb, ignore):
            if domtree.dominates(succ, bb):
                edges.append((bb, succ))
    return edges
