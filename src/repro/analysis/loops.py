"""Natural-loop detection (LoopInfo).

Loops are discovered from back edges of the dominator tree; back edges
sharing a header are merged into one loop, and loops are nested by
block containment.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir import BasicBlock, Function, Instruction, PhiInst
from .cfg import predecessors, reachable_blocks, successors
from .dominators import DominatorTree


class Loop:
    """A natural loop: header plus the body blocks of its back edges."""

    def __init__(self, header: BasicBlock, blocks: Set[BasicBlock]):
        self.header = header
        self.blocks = blocks
        self.parent: Optional[Loop] = None
        self.children: List[Loop] = []

    @property
    def function(self) -> Function:
        return self.header.parent

    @property
    def name(self) -> str:
        return f"@{self.function.name}:%{self.header.name}"

    @property
    def depth(self) -> int:
        depth = 1
        cur = self.parent
        while cur is not None:
            depth += 1
            cur = cur.parent
        return depth

    def contains_block(self, bb: BasicBlock) -> bool:
        return bb in self.blocks

    def contains(self, inst: Instruction) -> bool:
        return inst.parent in self.blocks

    @property
    def latches(self) -> List[BasicBlock]:
        """Blocks with a back edge to the header."""
        return [p for p in self.header.predecessors if p in self.blocks]

    @property
    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if any."""
        outside = [p for p in self.header.predecessors if p not in self.blocks]
        if len(outside) == 1 and len(outside[0].successors) == 1:
            return outside[0]
        return None

    @property
    def entering_blocks(self) -> List[BasicBlock]:
        return [p for p in self.header.predecessors if p not in self.blocks]

    @property
    def exit_edges(self) -> List[Tuple[BasicBlock, BasicBlock]]:
        edges = []
        for bb in self.blocks:
            for succ in bb.successors:
                if succ not in self.blocks:
                    edges.append((bb, succ))
        return edges

    @property
    def exit_blocks(self) -> List[BasicBlock]:
        seen: List[BasicBlock] = []
        for _, dst in self.exit_edges:
            if dst not in seen:
                seen.append(dst)
        return seen

    def instructions(self):
        for bb in self.function.blocks:
            if bb in self.blocks:
                yield from bb.instructions

    def memory_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions() if i.accesses_memory]

    def induction_phis(self) -> List[PhiInst]:
        """Phi nodes in the header (candidates for induction variables)."""
        return self.header.phis

    def __repr__(self) -> str:
        return f"<Loop {self.name} ({len(self.blocks)} blocks, depth {self.depth})>"


class LoopInfo:
    """All natural loops of a function, with nesting."""

    def __init__(self, fn: Function, loops: List[Loop]):
        self.function = fn
        self.loops = loops
        self._innermost: Dict[BasicBlock, Loop] = {}
        for loop in sorted(loops, key=lambda l: len(l.blocks), reverse=True):
            for bb in loop.blocks:
                self._innermost[bb] = loop

    @classmethod
    def compute(cls, fn: Function,
                ignore: FrozenSet[BasicBlock] = frozenset()) -> "LoopInfo":
        domtree = DominatorTree.compute(fn, ignore=ignore)
        reachable = reachable_blocks(fn, ignore)

        # Group back edges by header.
        latches_by_header: Dict[BasicBlock, List[BasicBlock]] = {}
        for bb in reachable:
            for succ in successors(bb, ignore):
                if domtree.dominates(succ, bb):
                    latches_by_header.setdefault(succ, []).append(bb)

        loops: List[Loop] = []
        for header, latches in latches_by_header.items():
            blocks: Set[BasicBlock] = {header}
            work = [l for l in latches]
            while work:
                bb = work.pop()
                if bb in blocks:
                    continue
                blocks.add(bb)
                work.extend(p for p in predecessors(bb, ignore)
                            if p in reachable)
            loops.append(Loop(header, blocks))

        # Establish nesting: the parent is the smallest strictly-containing loop.
        by_size = sorted(loops, key=lambda l: len(l.blocks))
        for i, inner in enumerate(by_size):
            for outer in by_size[i + 1:]:
                if inner is not outer and inner.header in outer.blocks \
                        and inner.blocks <= outer.blocks:
                    inner.parent = outer
                    outer.children.append(inner)
                    break
        return cls(fn, loops)

    def innermost_loop_of(self, item) -> Optional[Loop]:
        """Innermost loop containing a block or instruction."""
        bb = item if isinstance(item, BasicBlock) else item.parent
        return self._innermost.get(bb)

    def loop_with_header(self, header: BasicBlock) -> Optional[Loop]:
        for loop in self.loops:
            if loop.header is header:
                return loop
        return None

    @property
    def top_level(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def __iter__(self):
        return iter(self.loops)

    def __repr__(self) -> str:
        return f"<LoopInfo @{self.function.name}: {len(self.loops)} loops>"
