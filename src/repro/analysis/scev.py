"""Scalar evolution: add-recurrence analysis for induction variables.

A pared-down SCEV in the style of LLVM's: values used inside a loop
are classified as constants, loop invariants, or affine add-recurrences
``{base, +, step}`` over a loop.  Pointer operands of loads and stores
are further decomposed as ``base pointer + byte-offset expression`` so
alias analyses can reason about strided array walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..ir import (
    Argument,
    BinaryInst,
    CastInst,
    Constant,
    GEPInst,
    GlobalVariable,
    Instruction,
    PhiInst,
    PointerType,
    ArrayType,
    StructType,
    Value,
)
from .loops import Loop, LoopInfo


class SCEV:
    """Base class of scalar-evolution expressions."""

    def constant_value(self) -> Optional[int]:
        return None


@dataclass(frozen=True)
class SCEVConstant(SCEV):
    value: int

    def constant_value(self) -> Optional[int]:
        return self.value

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class SCEVUnknown(SCEV):
    """An opaque, loop-invariant value."""

    value: Value

    def __repr__(self) -> str:
        return f"inv({self.value.ref})"


@dataclass(frozen=True)
class SCEVAddRec(SCEV):
    """The affine recurrence ``{base, +, step}`` over ``loop``."""

    base: SCEV
    step: SCEV
    loop: Loop

    def __repr__(self) -> str:
        return f"{{{self.base!r},+,{self.step!r}}}"


@dataclass(frozen=True)
class SCEVAdd(SCEV):
    lhs: SCEV
    rhs: SCEV

    def __repr__(self) -> str:
        return f"({self.lhs!r} + {self.rhs!r})"


@dataclass(frozen=True)
class SCEVMul(SCEV):
    lhs: SCEV
    rhs: SCEV

    def __repr__(self) -> str:
        return f"({self.lhs!r} * {self.rhs!r})"


def scev_add(a: SCEV, b: SCEV) -> SCEV:
    ca, cb = a.constant_value(), b.constant_value()
    if ca is not None and cb is not None:
        return SCEVConstant(ca + cb)
    if ca == 0:
        return b
    if cb == 0:
        return a
    if isinstance(a, SCEVAddRec) and isinstance(b, SCEVAddRec):
        if a.loop is b.loop:
            return SCEVAddRec(scev_add(a.base, b.base),
                              scev_add(a.step, b.step), a.loop)
        return SCEVAdd(a, b)
    if isinstance(a, SCEVAddRec):
        return SCEVAddRec(scev_add(a.base, b), a.step, a.loop)
    if isinstance(b, SCEVAddRec):
        return SCEVAddRec(scev_add(b.base, a), b.step, b.loop)
    return SCEVAdd(a, b)


def scev_mul(a: SCEV, b: SCEV) -> SCEV:
    ca, cb = a.constant_value(), b.constant_value()
    if ca is not None and cb is not None:
        return SCEVConstant(ca * cb)
    if ca == 0 or cb == 0:
        return SCEVConstant(0)
    if ca == 1:
        return b
    if cb == 1:
        return a
    # Distribute a constant over an add-recurrence: c*{b,+,s} = {c*b,+,c*s}.
    if isinstance(a, SCEVAddRec) and cb is not None:
        return SCEVAddRec(scev_mul(a.base, b), scev_mul(a.step, b), a.loop)
    if isinstance(b, SCEVAddRec) and ca is not None:
        return SCEVAddRec(scev_mul(b.base, a), scev_mul(b.step, a), b.loop)
    return SCEVMul(a, b)


def scev_neg(a: SCEV) -> SCEV:
    return scev_mul(SCEVConstant(-1), a)


class ScalarEvolution:
    """Per-function SCEV computation, memoized per (value, loop)."""

    def __init__(self, loop_info: LoopInfo):
        self.loop_info = loop_info
        self._cache: Dict[Tuple[int, Optional[int]], SCEV] = {}

    def analyze(self, value: Value, loop: Optional[Loop]) -> SCEV:
        """SCEV of ``value`` with respect to ``loop`` (None = whole function)."""
        key = (id(value), id(loop) if loop else None)
        if key in self._cache:
            return self._cache[key]
        # Seed with unknown to cut cycles through phis.
        self._cache[key] = SCEVUnknown(value)
        result = self._analyze(value, loop)
        self._cache[key] = result
        return result

    def _analyze(self, value: Value, loop: Optional[Loop]) -> SCEV:
        if isinstance(value, Constant):
            if isinstance(value.value, int):
                return SCEVConstant(value.value)
            return SCEVUnknown(value)
        if isinstance(value, (Argument, GlobalVariable)):
            return SCEVUnknown(value)
        if not isinstance(value, Instruction):
            return SCEVUnknown(value)

        # Values defined outside the loop are invariant in it.
        if loop is not None and not loop.contains(value):
            return SCEVUnknown(value)

        if isinstance(value, PhiInst):
            return self._analyze_phi(value, loop)
        if isinstance(value, BinaryInst):
            lhs = self.analyze(value.lhs, loop)
            rhs = self.analyze(value.rhs, loop)
            if value.op == "add":
                return scev_add(lhs, rhs)
            if value.op == "sub":
                return scev_add(lhs, scev_neg(rhs))
            if value.op == "mul":
                return scev_mul(lhs, rhs)
            if value.op == "shl":
                c = rhs.constant_value()
                if c is not None:
                    return scev_mul(lhs, SCEVConstant(1 << c))
            return SCEVUnknown(value)
        if isinstance(value, CastInst) and value.op in ("sext", "zext",
                                                        "trunc", "bitcast"):
            # Width changes are ignored: the simulated machine is 64-bit
            # and the workloads do not overflow.
            return self.analyze(value.value, loop)
        return SCEVUnknown(value)

    def _analyze_phi(self, phi: PhiInst, loop: Optional[Loop]) -> SCEV:
        phi_loop = self.loop_info.innermost_loop_of(phi)
        if phi_loop is None or phi.parent is not phi_loop.header:
            return SCEVUnknown(phi)
        if len(phi.incoming) != 2:
            return SCEVUnknown(phi)

        init = None
        update = None
        for v, bb in phi.incoming:
            if bb in phi_loop.blocks:
                update = v
            else:
                init = v
        if init is None or update is None:
            return SCEVUnknown(phi)

        # Look for update = phi + step with a loop-invariant step.
        if isinstance(update, BinaryInst) and update.op in ("add", "sub"):
            other = None
            if update.lhs is phi:
                other = update.rhs
            elif update.rhs is phi and update.op == "add":
                other = update.lhs
            if other is not None:
                step = self.analyze(other, phi_loop)
                if self._is_invariant(step, phi_loop):
                    if update.op == "sub":
                        step = scev_neg(step)
                    base = self.analyze(init, phi_loop.parent)
                    return SCEVAddRec(base, step, phi_loop)
        return SCEVUnknown(phi)

    def _is_invariant(self, scev: SCEV, loop: Loop) -> bool:
        if isinstance(scev, SCEVConstant):
            return True
        if isinstance(scev, SCEVUnknown):
            v = scev.value
            return not (isinstance(v, Instruction) and loop.contains(v))
        if isinstance(scev, (SCEVAdd, SCEVMul)):
            return (self._is_invariant(scev.lhs, loop)
                    and self._is_invariant(scev.rhs, loop))
        return False

    # -- pointer decomposition ------------------------------------------------

    def pointer_offset(self, pointer: Value, loop: Optional[Loop]
                       ) -> Tuple[Value, SCEV]:
        """Decompose ``pointer`` into (underlying base, byte-offset SCEV).

        Walks GEP and bitcast chains; the returned base is the deepest
        non-GEP pointer value.
        """
        offset: SCEV = SCEVConstant(0)
        cur = pointer
        while True:
            if isinstance(cur, GEPInst):
                offset = scev_add(offset, self._gep_offset(cur, loop))
                cur = cur.pointer
            elif isinstance(cur, CastInst) and cur.op == "bitcast":
                cur = cur.value
            else:
                return cur, offset

    def _gep_offset(self, gep: GEPInst, loop: Optional[Loop]) -> SCEV:
        offset: SCEV = SCEVConstant(0)
        ty = gep.pointer.type
        for i, idx in enumerate(gep.indices):
            idx_scev = self.analyze(idx, loop)
            if i == 0:
                assert isinstance(ty, PointerType)
                scale = ty.pointee.size
                offset = scev_add(offset, scev_mul(idx_scev,
                                                   SCEVConstant(scale)))
                ty = ty.pointee
            elif isinstance(ty, ArrayType):
                offset = scev_add(
                    offset, scev_mul(idx_scev, SCEVConstant(ty.element.size)))
                ty = ty.element
            elif isinstance(ty, StructType):
                c = idx_scev.constant_value()
                if c is None:
                    return SCEVUnknown(gep)
                offset = scev_add(offset, SCEVConstant(ty.field_offset(c)))
                ty = ty.fields[c]
            else:
                return SCEVUnknown(gep)
        return offset


def affine_parts(scev: SCEV, loop: Loop) -> Optional[Tuple[int, int]]:
    """Extract (constant base, constant step) of an affine SCEV over ``loop``.

    Returns None unless the expression is a constant (step 0) or an
    add-recurrence over exactly ``loop`` with constant base and step.
    """
    c = scev.constant_value()
    if c is not None:
        return c, 0
    if isinstance(scev, SCEVAddRec) and scev.loop is loop:
        base = scev.base.constant_value()
        step = scev.step.constant_value()
        if base is not None and step is not None:
            return base, step
    return None
