"""Tests for the Orchestrator: ordering, bailout, premises, caching."""

import pytest

from repro.analysis import AnalysisContext
from repro.core import (
    AnalysisModule,
    BailoutPolicy,
    NullResolver,
    Orchestrator,
    OrchestratorConfig,
)
from repro.ir import GlobalVariable, I32, Module, parse_module
from repro.query import (
    AliasQuery,
    AliasResult,
    JoinPolicy,
    MemoryLocation,
    OptionSet,
    QueryResponse,
    SpeculativeAssertion,
    TemporalRelation,
)


def make_query():
    g1 = GlobalVariable("a", I32)
    g2 = GlobalVariable("b", I32)
    return AliasQuery(MemoryLocation(g1, 4), TemporalRelation.SAME,
                      MemoryLocation(g2, 4), None)


class _Stub(AnalysisModule):
    """Records evaluation order; returns a canned response."""

    def __init__(self, name, response, log, speculative=False, cost=0.0):
        super().__init__(AnalysisContext(Module("t")), None)
        self.name = name
        self._response = response
        self._log = log
        self.is_speculative = speculative
        self.average_assertion_cost = cost

    def alias(self, query, resolver):
        self._log.append(self.name)
        return self._response


class _PremiseAsker(AnalysisModule):
    """Resolves by asking a premise and forwarding the answer."""

    name = "asker"

    def __init__(self, log):
        super().__init__(AnalysisContext(Module("t")), None)
        self._log = log

    def alias(self, query, resolver):
        self._log.append("asker")
        answer = resolver.premise(query.with_desired(AliasResult.NO_ALIAS))
        return answer


class TestOrdering:
    def test_memory_modules_before_speculation(self):
        log = []
        may = QueryResponse.may_alias()
        modules = [
            _Stub("spec-cheap", may, log, speculative=True, cost=1.0),
            _Stub("mem", may, log),
            _Stub("spec-costly", may, log, speculative=True, cost=9.0),
        ]
        orch = Orchestrator(modules, OrchestratorConfig(use_cache=False))
        orch.handle(make_query())
        assert log == ["mem", "spec-cheap", "spec-costly"]


class TestBailout:
    def test_base_policy_stops_at_free_definite(self):
        log = []
        modules = [
            _Stub("m1", QueryResponse.no_alias(), log),
            _Stub("m2", QueryResponse.no_alias(), log),
        ]
        orch = Orchestrator(modules, OrchestratorConfig(use_cache=False))
        orch.handle(make_query())
        assert log == ["m1"]

    def test_base_policy_continues_past_speculative_definite(self):
        log = []
        spec = QueryResponse(
            AliasResult.NO_ALIAS,
            OptionSet.single(SpeculativeAssertion("s", cost=1.0)))
        modules = [
            _Stub("m1", spec, log),
            _Stub("m2", QueryResponse.may_alias(), log),
        ]
        orch = Orchestrator(modules, OrchestratorConfig(use_cache=False))
        r = orch.handle(make_query())
        assert log == ["m1", "m2"]
        assert r.result is AliasResult.NO_ALIAS

    def test_definite_policy_stops_at_any_definite(self):
        log = []
        spec = QueryResponse(
            AliasResult.NO_ALIAS,
            OptionSet.single(SpeculativeAssertion("s", cost=1.0)))
        modules = [
            _Stub("m1", spec, log),
            _Stub("m2", QueryResponse.may_alias(), log),
        ]
        orch = Orchestrator(modules, OrchestratorConfig(
            use_cache=False, bailout_policy=BailoutPolicy.DEFINITE))
        orch.handle(make_query())
        assert log == ["m1"]

    def test_exhaustive_policy_never_stops(self):
        log = []
        modules = [
            _Stub("m1", QueryResponse.no_alias(), log),
            _Stub("m2", QueryResponse.no_alias(), log),
        ]
        orch = Orchestrator(modules, OrchestratorConfig(
            use_cache=False, bailout_policy=BailoutPolicy.EXHAUSTIVE))
        orch.handle(make_query())
        assert log == ["m1", "m2"]


class TestPremises:
    def test_premise_routed_to_other_modules(self):
        log = []
        modules = [
            _PremiseAsker(log),
            _Stub("answerer", QueryResponse.no_alias(), log,
                  speculative=True),
        ]
        orch = Orchestrator(modules, OrchestratorConfig(use_cache=False))
        r = orch.handle(make_query())
        assert r.result is AliasResult.NO_ALIAS
        # asker (top) -> asker (premise eval) happens via orchestrator:
        assert "answerer" in log

    def test_contributors_tracked_through_premises(self):
        log = []
        modules = [
            _PremiseAsker(log),
            _Stub("answerer", QueryResponse.no_alias(), log,
                  speculative=True),
        ]
        orch = Orchestrator(modules, OrchestratorConfig(use_cache=False))
        orch.handle(make_query())
        assert "asker" in orch.last_contributors
        assert "answerer" in orch.last_contributors

    def test_desired_result_mismatch_normalized(self):
        log = []
        modules = [
            _PremiseAsker(log),
            _Stub("answerer", QueryResponse.must_alias(), log,
                  speculative=True),
        ]
        orch = Orchestrator(modules, OrchestratorConfig(use_cache=False))
        r = orch.handle(make_query())
        # asker wanted NoAlias, got MustAlias -> conservative premise,
        # and the final result is the answerer's own MustAlias at the
        # top level.
        assert orch.stats.desired_result_bails >= 1
        assert r.result is AliasResult.MUST_ALIAS

    def test_depth_limit_cuts_recursion(self):
        log = []
        modules = [_PremiseAsker(log)]
        orch = Orchestrator(modules, OrchestratorConfig(
            use_cache=False, max_premise_depth=3))
        r = orch.handle(make_query())
        assert r.result is AliasResult.MAY_ALIAS

    def test_cycle_guard(self):
        class _SelfAsker(AnalysisModule):
            name = "selfish"

            def alias(self, query, resolver):
                return resolver.premise(query)  # identical query

        orch = Orchestrator(
            [_SelfAsker(AnalysisContext(Module("t")), None)],
            OrchestratorConfig(use_cache=False))
        r = orch.handle(make_query())
        assert r.result is AliasResult.MAY_ALIAS
        assert orch.stats.cycles_cut >= 1

    def test_cycle_tainted_answers_are_not_memoized(self):
        """A response weakened by a cycle cut must not be cached.

        Handling q1 evaluates q2 as a premise; q2's own premise (q1)
        is in-flight and gets cut to the conservative answer, so q2
        resolves MAY_ALIAS *only because of the cycle*.  Asked
        directly afterwards — with q1 free to fully evaluate — q2 is
        NO_ALIAS.  Memoizing the tainted first answer would wrongly
        pin q2 at MAY_ALIAS forever.
        """
        g3 = GlobalVariable("c", I32)
        g4 = GlobalVariable("d", I32)
        q1 = make_query()                       # over globals a, b
        q2 = AliasQuery(MemoryLocation(g3, 4), TemporalRelation.SAME,
                        MemoryLocation(g4, 4), None)

        def is_q1(query):
            return query.loc1.pointer.name == "a"

        class _Asker(AnalysisModule):
            name = "asker"

            def alias(self, query, resolver):
                if is_q1(query):
                    resolver.premise(q2)        # drags q2 into q1's tree
                return QueryResponse.may_alias()

        class _BackAsker(AnalysisModule):
            name = "backasker"

            def alias(self, query, resolver):
                if not is_q1(query):
                    return resolver.premise(q1)  # cycles while q1 runs
                return QueryResponse.may_alias()

        class _Direct(AnalysisModule):
            name = "direct"

            def alias(self, query, resolver):
                if is_q1(query):
                    return QueryResponse.no_alias()
                return QueryResponse.may_alias()

        ctx = AnalysisContext(Module("t"))
        orch = Orchestrator(
            [_Asker(ctx, None), _BackAsker(ctx, None), _Direct(ctx, None)],
            OrchestratorConfig(use_cache=True))
        assert orch.handle(q1).result is AliasResult.NO_ALIAS
        assert orch.stats.cycles_cut >= 1
        assert orch.handle(q2).result is AliasResult.NO_ALIAS


class TestCache:
    def test_cache_hits(self):
        log = []
        modules = [_Stub("m", QueryResponse.no_alias(), log)]
        orch = Orchestrator(modules, OrchestratorConfig(use_cache=True))
        q = make_query()
        orch.handle(q)
        orch.handle(q)
        assert log == ["m"]
        assert orch.stats.cache_hits == 1

    def test_clear_cache(self):
        log = []
        modules = [_Stub("m", QueryResponse.no_alias(), log)]
        orch = Orchestrator(modules, OrchestratorConfig(use_cache=True))
        q = make_query()
        orch.handle(q)
        orch.clear_cache()
        orch.handle(q)
        assert log == ["m", "m"]
        assert orch.stats.cache_size == 1  # refilled after the clear

    def test_lru_bound_evicts_oldest(self):
        log = []
        modules = [_Stub("m", QueryResponse.no_alias(), log)]
        orch = Orchestrator(modules, OrchestratorConfig(
            use_cache=True, max_cache_entries=2))
        q1, q2, q3 = make_query(), make_query(), make_query()
        orch.handle(q1)
        orch.handle(q2)
        orch.handle(q3)                      # evicts q1
        assert orch.stats.cache_size == 2
        assert orch.stats.cache_evictions == 1
        orch.handle(q3)                      # still cached
        assert orch.stats.cache_hits == 1
        orch.handle(q1)                      # recomputed after eviction
        assert log.count("m") == 4

    def test_lru_recency_on_hit(self):
        log = []
        modules = [_Stub("m", QueryResponse.no_alias(), log)]
        orch = Orchestrator(modules, OrchestratorConfig(
            use_cache=True, max_cache_entries=2))
        q1, q2, q3 = make_query(), make_query(), make_query()
        orch.handle(q1)
        orch.handle(q2)
        orch.handle(q1)                      # refresh q1's recency
        orch.handle(q3)                      # must evict q2, not q1
        orch.handle(q1)
        assert orch.stats.cache_hits == 2

    def test_hit_rate_and_reset(self):
        log = []
        modules = [_Stub("m", QueryResponse.no_alias(), log)]
        orch = Orchestrator(modules, OrchestratorConfig(use_cache=True))
        q = make_query()
        orch.handle(q)
        orch.handle(q)
        assert orch.stats.cache_lookups == 2
        assert orch.stats.cache_hit_rate == pytest.approx(0.5)
        assert orch.stats.total_module_evals == 1
        orch.reset_stats()
        assert orch.stats.queries == 0
        assert orch.stats.cache_hits == 0
        assert orch.stats.cache_size == 1    # memo itself survives


class TestNullResolver:
    def test_always_conservative(self):
        r = NullResolver().premise(make_query())
        assert r.result is AliasResult.MAY_ALIAS
