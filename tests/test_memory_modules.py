"""Tests for the 13 memory-analysis modules on crafted IR."""

import pytest

from repro.analysis import AnalysisContext
from repro.core import NullResolver, Orchestrator, OrchestratorConfig
from repro.ir import parse_module
from repro.modules.memory import (
    BasicAA,
    CallsiteSummaryAA,
    FieldMallocAA,
    GlobalMallocAA,
    InductionVariableAA,
    KillFlowAA,
    NoCaptureGlobalAA,
    NoCaptureSourceAA,
    ReachabilityAA,
    ScalarEvolutionAA,
    StdLibAA,
    TypeBasedFieldAA,
    UniqueAccessPathsAA,
    default_memory_modules,
)
from repro.query import (
    AliasQuery,
    AliasResult,
    CFGView,
    MemoryLocation,
    ModRefQuery,
    ModRefResult,
    TemporalRelation,
)

NULL = NullResolver()


def setup(text):
    m = parse_module(text)
    ctx = AnalysisContext(m)
    fn = m.defined_functions[0]
    values = {}
    for f in m.defined_functions:
        for i in f.instructions():
            if i.name:
                values[i.name] = i
    return m, ctx, fn, values


def aq(loc1, loc2, loop=None, relation=TemporalRelation.SAME, cfg=None,
       desired=None):
    return AliasQuery(loc1, relation, loc2, loop, (), cfg, desired)


def loc(v, size=4):
    return MemoryLocation(v, size)


class TestBasicAA:
    SOURCE = """
global @a : i32 = 0
global @b : i32 = 0
global @arr : [10 x i32] = zeroinit
declare @malloc(i64) -> i8*
func @f(i32* %unknown) -> i32 {
entry:
  %s = alloca i32
  %s2 = alloca i32
  %p0 = gep [10 x i32]* @arr, i64 0, i64 0
  %p1 = gep [10 x i32]* @arr, i64 0, i64 1
  %h = call @malloc(i64 16)
  ret i32 0
}
"""

    def test_distinct_globals(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = BasicAA(ctx)
        r = aa.alias(aq(loc(m.get_global("a")), loc(m.get_global("b"))), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_same_global(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = BasicAA(ctx)
        g = m.get_global("a")
        r = aa.alias(aq(loc(g), loc(g)), NULL)
        assert r.result is AliasResult.MUST_ALIAS

    def test_distinct_allocas(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = BasicAA(ctx)
        r = aa.alias(aq(loc(v["s"]), loc(v["s2"])), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_global_vs_alloca_vs_heap(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = BasicAA(ctx)
        g = loc(m.get_global("a"))
        assert aa.alias(aq(g, loc(v["s"])), NULL).result \
            is AliasResult.NO_ALIAS
        assert aa.alias(aq(g, loc(v["h"])), NULL).result \
            is AliasResult.NO_ALIAS
        assert aa.alias(aq(loc(v["s"]), loc(v["h"])), NULL).result \
            is AliasResult.NO_ALIAS

    def test_disjoint_constant_offsets(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = BasicAA(ctx)
        r = aa.alias(aq(loc(v["p0"]), loc(v["p1"])), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_overlapping_offsets(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = BasicAA(ctx)
        r = aa.alias(aq(loc(v["p0"], 8), loc(v["p1"], 8)), NULL)
        assert r.result is AliasResult.PARTIAL_ALIAS

    def test_contained_interval_is_subalias(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = BasicAA(ctx)
        r = aa.alias(aq(loc(v["p0"], 8), loc(v["p1"], 4)), NULL)
        assert r.result is AliasResult.SUB_ALIAS

    def test_contained_offsets_subalias(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = BasicAA(ctx)
        r = aa.alias(aq(loc(v["p1"], 4), loc(v["p0"], 12)), NULL)
        assert r.result is AliasResult.SUB_ALIAS

    def test_unknown_pointer_conservative(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = BasicAA(ctx)
        unknown = fn.args[0]
        r = aa.alias(aq(loc(unknown), loc(m.get_global("a"))), NULL)
        assert r.result is AliasResult.MAY_ALIAS


class TestTypeBasedFieldAA:
    SOURCE = """
struct %node { i32, f64, i32 }
func @f(%node* %p, %node* %q) -> i32 {
entry:
  %f0 = gep %node* %p, i64 0, i64 0
  %f1 = gep %node* %q, i64 0, i64 1
  %f2 = gep %node* %q, i64 0, i64 0
  ret i32 0
}
"""

    def test_distinct_fields_no_alias(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = TypeBasedFieldAA(ctx)
        r = aa.alias(aq(loc(v["f0"], 4), loc(v["f1"], 8)), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_same_field_may_alias(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = TypeBasedFieldAA(ctx)
        r = aa.alias(aq(loc(v["f0"], 4), loc(v["f2"], 4)), NULL)
        assert r.result is AliasResult.MAY_ALIAS

    def test_oversized_access_conservative(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = TypeBasedFieldAA(ctx)
        # 8-byte access through a 4-byte field spills into neighbours.
        r = aa.alias(aq(loc(v["f0"], 8), loc(v["f1"], 8)), NULL)
        assert r.result is AliasResult.MAY_ALIAS


class TestFieldMallocAA:
    SOURCE = """
declare @malloc(i64) -> i8*
func @f() -> i32 {
entry:
  %h1 = call @malloc(i64 32)
  %h2 = call @malloc(i64 32)
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %fresh = call @malloc(i64 8)
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 4
  condbr i1 %c, %loop, %out
out:
  ret i32 0
}
"""

    def test_distinct_callsites(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = FieldMallocAA(ctx)
        r = aa.alias(aq(loc(v["h1"]), loc(v["h2"])), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_same_callsite_cross_iteration_fresh(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = FieldMallocAA(ctx)
        loop = ctx.loop_info(fn).loops[0]
        r = aa.alias(aq(loc(v["fresh"]), loc(v["fresh"]), loop=loop,
                        relation=TemporalRelation.BEFORE), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_same_callsite_same_iteration_may(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = FieldMallocAA(ctx)
        loop = ctx.loop_info(fn).loops[0]
        r = aa.alias(aq(loc(v["fresh"]), loc(v["fresh"]), loop=loop), NULL)
        assert r.result is AliasResult.MAY_ALIAS


STRIDED = """
global @arr : [100 x i32] = zeroinit
func @f() -> i32 {
entry:
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i.next, %loop]
  %two.i = mul i64 %i, 2
  %two.i1 = add i64 %two.i, 1
  %even = gep [100 x i32]* @arr, i64 0, i64 %two.i
  %ev = load i32* %even
  %odd = gep [100 x i32]* @arr, i64 0, i64 %two.i1
  store i32 %ev, i32* %odd
  %same = gep [100 x i32]* @arr, i64 0, i64 %i
  %sv = load i32* %same
  store i32 %sv, i32* %same
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, 40
  condbr i1 %c, %loop, %out
out:
  ret i32 0
}
"""


class TestScalarEvolutionAA:
    def test_interleaved_strides_no_alias_same_iteration(self):
        m, ctx, fn, v = setup(STRIDED)
        aa = ScalarEvolutionAA(ctx)
        loop = ctx.loop_info(fn).loops[0]
        r = aa.alias(aq(loc(v["even"]), loc(v["odd"]), loop=loop), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_interleaved_strides_no_alias_cross_iteration(self):
        m, ctx, fn, v = setup(STRIDED)
        aa = ScalarEvolutionAA(ctx)
        loop = ctx.loop_info(fn).loops[0]
        r = aa.alias(aq(loc(v["even"]), loc(v["odd"]), loop=loop,
                        relation=TemporalRelation.BEFORE), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_same_affine_function_must_alias(self):
        m, ctx, fn, v = setup(STRIDED)
        aa = ScalarEvolutionAA(ctx)
        loop = ctx.loop_info(fn).loops[0]
        r = aa.alias(aq(loc(v["same"]), loc(v["same"]), loop=loop), NULL)
        assert r.result is AliasResult.MUST_ALIAS

    def test_unit_stride_cross_iteration_overlap(self):
        """a[2i] in iteration k vs a[2i+1] in a later iteration can
        collide (2k+1 == 2j for no integers, but 2k vs 2j+1 ... the
        odd/even split holds across iterations; use the self pair)."""
        m, ctx, fn, v = setup(STRIDED)
        aa = ScalarEvolutionAA(ctx)
        loop = ctx.loop_info(fn).loops[0]
        # same slot, unit stride: iteration k and k+1 do not collide
        r = aa.alias(aq(loc(v["same"]), loc(v["same"]), loop=loop,
                        relation=TemporalRelation.BEFORE), NULL)
        assert r.result is AliasResult.NO_ALIAS


class TestInductionVariableAA:
    def test_same_pointer_cross_iteration(self):
        m, ctx, fn, v = setup(STRIDED)
        aa = InductionVariableAA(ctx)
        loop = ctx.loop_info(fn).loops[0]
        r = aa.alias(aq(loc(v["even"]), loc(v["even"]), loop=loop,
                        relation=TemporalRelation.BEFORE), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_same_iteration_not_handled(self):
        m, ctx, fn, v = setup(STRIDED)
        aa = InductionVariableAA(ctx)
        loop = ctx.loop_info(fn).loops[0]
        r = aa.alias(aq(loc(v["even"]), loc(v["even"]), loop=loop), NULL)
        assert r.result is AliasResult.MAY_ALIAS


class TestKillFlowAA:
    SOURCE = """
global @a : i32 = 0
global @b : i32 = 0
func @f() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  store i32 %i, i32* @a
  %v = load i32* @a
  store i32 %v, i32* @b
  %i2 = add i32 %i, 1
  store i32 %i2, i32* @a
  %c = icmp slt i32 %i2, 9
  condbr i1 %c, %loop, %out
out:
  ret i32 0
}
"""

    def _setup(self):
        m, ctx, fn, v = setup(self.SOURCE)
        loop = ctx.loop_info(fn).loops[0]
        cfg = CFGView.static(ctx, fn)
        stores = [i for i in fn.instructions() if i.opcode == "store"]
        kill, load = stores[0], v["v"]
        last_store = stores[2]
        # Collaboration: must-alias premises answered by BasicAA.
        orch = Orchestrator([BasicAA(ctx), KillFlowAA(ctx)],
                            OrchestratorConfig(use_cache=False))
        return m, ctx, fn, loop, cfg, kill, load, last_store, orch

    def test_cross_iteration_flow_killed(self):
        m, ctx, fn, loop, cfg, kill, load, last_store, orch = self._setup()
        q = ModRefQuery(last_store, TemporalRelation.BEFORE, load, loop,
                        (), cfg)
        r = orch.handle(q)
        assert r.result is ModRefResult.NO_MOD_REF

    def test_intra_iteration_flow_not_killed(self):
        m, ctx, fn, loop, cfg, kill, load, last_store, orch = self._setup()
        # kill store -> load in the same iteration: direct flow, no
        # intervening store.
        q = ModRefQuery(kill, TemporalRelation.SAME, load, loop, (), cfg)
        r = orch.handle(q)
        assert r.result is not ModRefResult.NO_MOD_REF

    def test_different_location_not_killed(self):
        m, ctx, fn, loop, cfg, kill, load, last_store, orch = self._setup()
        b_store = [i for i in fn.instructions() if i.opcode == "store"][1]
        # store @b in iter k vs store @b in iter k+1: output dep, the
        # @a kills are irrelevant.
        q = ModRefQuery(b_store, TemporalRelation.BEFORE, b_store, loop,
                        (), cfg)
        r = orch.handle(q)
        assert r.result is not ModRefResult.NO_MOD_REF

    def test_intra_iteration_killed_on_all_paths(self):
        m, ctx, fn, v = setup("""
global @a : i32 = 0
func @g() -> i32 {
entry:
  store i32 1, i32* @a
  store i32 2, i32* @a
  %v = load i32* @a
  ret i32 %v
}
""")
        cfg = CFGView.static(ctx, fn)
        stores = [i for i in fn.instructions() if i.opcode == "store"]
        orch = Orchestrator([BasicAA(ctx), KillFlowAA(ctx)],
                            OrchestratorConfig(use_cache=False))
        q = ModRefQuery(stores[0], TemporalRelation.SAME, v["v"], None,
                        (), cfg)
        assert orch.handle(q).result is ModRefResult.NO_MOD_REF


class TestReachabilityAA:
    SOURCE = """
global @a : i32 = 0
global @b : i32 = 0
func @f(i1 %c) -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %join]
  condbr i1 %c, %left, %right
left:
  store i32 1, i32* @a
  br %join
right:
  %v = load i32* @a
  br %join
join:
  %i2 = add i32 %i, 1
  %lc = icmp slt i32 %i2, 5
  condbr i1 %lc, %loop, %out
out:
  ret i32 0
}
"""

    def test_no_intra_iteration_path_between_branch_arms(self):
        m, ctx, fn, v = setup(self.SOURCE)
        loop = ctx.loop_info(fn).loops[0]
        cfg = CFGView.static(ctx, fn)
        aa = ReachabilityAA(ctx)
        store = next(i for i in fn.instructions() if i.opcode == "store")
        load = v["v"]
        r = aa.modref(ModRefQuery(store, TemporalRelation.SAME, load,
                                  loop, (), cfg), NULL)
        assert r.result is ModRefResult.NO_MOD_REF

    def test_cross_iteration_path_exists(self):
        m, ctx, fn, v = setup(self.SOURCE)
        loop = ctx.loop_info(fn).loops[0]
        cfg = CFGView.static(ctx, fn)
        aa = ReachabilityAA(ctx)
        store = next(i for i in fn.instructions() if i.opcode == "store")
        r = aa.modref(ModRefQuery(store, TemporalRelation.BEFORE, v["v"],
                                  loop, (), cfg), NULL)
        assert r.result is ModRefResult.MOD_REF  # path via back edge

    def test_sequential_order_no_backwards_path(self):
        m, ctx, fn, v = setup("""
global @a : i32 = 0
func @g() -> i32 {
entry:
  %v = load i32* @a
  store i32 1, i32* @a
  ret i32 %v
}
""")
        cfg = CFGView.static(ctx, fn)
        aa = ReachabilityAA(ctx)
        store = next(i for i in fn.instructions() if i.opcode == "store")
        # Dependence store -> load needs a path; the store is after.
        r = aa.modref(ModRefQuery(store, TemporalRelation.SAME, v["v"],
                                  None, (), cfg), NULL)
        assert r.result is ModRefResult.NO_MOD_REF


class TestCaptureModules:
    SOURCE = """
global @priv : i32 = 0
global @leaked : i32 = 0
global @sink : i32* = zeroinit
declare @malloc(i64) -> i8*
func @f(i32* %unknown) -> i32 {
entry:
  store i32 1, i32* @priv
  store i32* @leaked, i32** @sink
  %h = call @malloc(i64 8)
  %hp = bitcast i8* %h to i32*
  store i32 2, i32* %hp
  %u = load i32* %unknown
  ret i32 %u
}
"""

    def test_non_captured_global_vs_unknown(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = NoCaptureGlobalAA(ctx)
        unknown = fn.args[0]
        r = aa.alias(aq(loc(m.get_global("priv")), loc(unknown)), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_captured_global_conservative(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = NoCaptureGlobalAA(ctx)
        unknown = fn.args[0]
        r = aa.alias(aq(loc(m.get_global("leaked")), loc(unknown)), NULL)
        assert r.result is AliasResult.MAY_ALIAS

    def test_non_captured_heap_vs_unknown(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = NoCaptureSourceAA(ctx)
        unknown = fn.args[0]
        r = aa.alias(aq(loc(v["h"]), loc(unknown)), NULL)
        assert r.result is AliasResult.NO_ALIAS


class TestGlobalMallocAA:
    SOURCE = """
global @pool : i32* = zeroinit
global @other : i32 = 0
declare @malloc(i64) -> i8*
func @f() -> i32 {
entry:
  %h = call @malloc(i64 64)
  %hp = bitcast i8* %h to i32*
  store i32* %hp, i32** @pool
  %p = load i32** @pool
  %v = load i32* %p
  ret i32 %v
}
"""

    def test_loaded_pool_pointer_vs_other_global(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = GlobalMallocAA(ctx)
        r = aa.alias(aq(loc(v["p"]), loc(m.get_global("other"))), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_loaded_pool_pointer_vs_its_own_site(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = GlobalMallocAA(ctx)
        r = aa.alias(aq(loc(v["p"]), loc(v["h"])), NULL)
        assert r.result is AliasResult.MAY_ALIAS


class TestUniqueAccessPathsAA:
    SOURCE = """
global @buf : f64* = zeroinit
declare @malloc(i64) -> i8*
func @f() -> i32 {
entry:
  %h = call @malloc(i64 1024)
  %hf = bitcast i8* %h to f64*
  store f64* %hf, f64** @buf
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i2, %loop]
  %b1 = load f64** @buf
  %lo = gep f64* %b1, i64 %i
  %lv = load f64* %lo
  %b2 = load f64** @buf
  %hi.i = add i64 %i, 64
  %hi = gep f64* %b2, i64 %hi.i
  store f64 %lv, f64* %hi
  %lo2 = gep f64* %b2, i64 %i
  %lv2 = load f64* %lo2
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 32
  condbr i1 %c, %loop, %out
out:
  ret i32 0
}
"""

    def test_disjoint_regions_through_reloaded_pointer(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = UniqueAccessPathsAA(ctx)
        loop = ctx.loop_info(fn).loops[0]
        r = aa.alias(aq(loc(v["lo"], 8), loc(v["hi"], 8), loop=loop), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_cross_iteration_also_disjoint(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = UniqueAccessPathsAA(ctx)
        loop = ctx.loop_info(fn).loops[0]
        r = aa.alias(aq(loc(v["lo"], 8), loc(v["hi"], 8), loop=loop,
                        relation=TemporalRelation.BEFORE), NULL)
        assert r.result is AliasResult.NO_ALIAS

    def test_must_alias_same_offset_through_two_loads(self):
        m, ctx, fn, v = setup(self.SOURCE)
        aa = UniqueAccessPathsAA(ctx)
        loop = ctx.loop_info(fn).loops[0]
        # lo via %b1 and the same affine offset via %b2:
        r = aa.alias(AliasQuery(MemoryLocation(v["lo"], 8),
                                TemporalRelation.SAME,
                                MemoryLocation(v["lo2"], 8), loop), NULL)
        assert r.result is AliasResult.MUST_ALIAS


class TestStdLibAA:
    SOURCE = """
global @a : [8 x i8] = zeroinit
global @b : [8 x i8] = zeroinit
declare @memcpy(i8*, i8*, i64) -> i8*
declare @sqrt(f64) -> f64 [pure]
declare @rand() -> i32
func @f() -> i32 {
entry:
  %pa = gep [8 x i8]* @a, i64 0, i64 0
  %pb = gep [8 x i8]* @b, i64 0, i64 0
  %r = call @memcpy(i8* %pa, i8* %pb, i64 8)
  %s = call @sqrt(f64 4.0)
  %r1 = call @rand()
  %r2 = call @rand()
  %v = load i8* %pa
  ret i32 0
}
"""

    def _orch(self, ctx):
        return Orchestrator([BasicAA(ctx), StdLibAA(ctx)],
                            OrchestratorConfig(use_cache=False))

    def test_pure_call_no_modref(self):
        m, ctx, fn, v = setup(self.SOURCE)
        q = ModRefQuery(v["s"], TemporalRelation.SAME, v["v"], None)
        assert self._orch(ctx).handle(q).result is ModRefResult.NO_MOD_REF

    def test_memcpy_mods_dst(self):
        m, ctx, fn, v = setup(self.SOURCE)
        q = ModRefQuery(v["r"], TemporalRelation.SAME, v["v"], None)
        r = self._orch(ctx).handle(q)
        assert r.result is ModRefResult.MOD  # writes @a, which %v reads

    def test_memcpy_vs_unrelated(self):
        m, ctx, fn, v = setup("""
global @a : [8 x i8] = zeroinit
global @b : [8 x i8] = zeroinit
global @c : i8 = 0
declare @memcpy(i8*, i8*, i64) -> i8*
func @f() -> i32 {
entry:
  %pa = gep [8 x i8]* @a, i64 0, i64 0
  %pb = gep [8 x i8]* @b, i64 0, i64 0
  %r = call @memcpy(i8* %pa, i8* %pb, i64 8)
  %v = load i8* @c
  ret i32 0
}
""")
        q = ModRefQuery(v["r"], TemporalRelation.SAME, v["v"], None)
        assert self._orch(ctx).handle(q).result is ModRefResult.NO_MOD_REF

    def test_rand_pair_shares_state(self):
        m, ctx, fn, v = setup(self.SOURCE)
        q = ModRefQuery(v["r1"], TemporalRelation.SAME, v["r2"], None)
        r = StdLibAA(ctx).modref(q, NULL)
        assert r.result is ModRefResult.MOD_REF

    def test_rand_vs_load_no_modref(self):
        m, ctx, fn, v = setup(self.SOURCE)
        q = ModRefQuery(v["r1"], TemporalRelation.SAME, v["v"], None)
        r = StdLibAA(ctx).modref(q, NULL)
        assert r.result is ModRefResult.NO_MOD_REF


class TestCallsiteSummaryAA:
    SOURCE = """
global @g : i32 = 0
global @other : i32 = 0
func @bump() -> void {
entry:
  %v = load i32* @g
  %v2 = add i32 %v, 1
  store i32 %v2, i32* @g
  ret
}
func @pure_helper(i32 %x) -> i32 {
entry:
  %y = mul i32 %x, 2
  ret i32 %y
}
func @main() -> i32 {
entry:
  call @bump()
  %w = load i32* @other
  %g.v = load i32* @g
  %h = call @pure_helper(i32 1)
  ret i32 %w
}
"""

    def _orch(self, ctx):
        return Orchestrator([BasicAA(ctx), CallsiteSummaryAA(ctx)],
                            OrchestratorConfig(use_cache=False))

    def test_call_vs_unrelated_global(self):
        m, ctx, fn, v = setup(self.SOURCE)
        main = m.get_function("main")
        call = next(i for i in main.instructions() if i.opcode == "call")
        q = ModRefQuery(call, TemporalRelation.SAME, v["w"], None)
        assert self._orch(ctx).handle(q).result is ModRefResult.NO_MOD_REF

    def test_call_vs_touched_global(self):
        m, ctx, fn, v = setup(self.SOURCE)
        main = m.get_function("main")
        call = next(i for i in main.instructions() if i.opcode == "call")
        q = ModRefQuery(call, TemporalRelation.SAME, v["g.v"], None)
        r = self._orch(ctx).handle(q)
        assert r.result is not ModRefResult.NO_MOD_REF

    def test_computation_only_callee(self):
        m, ctx, fn, v = setup(self.SOURCE)
        main = m.get_function("main")
        calls = [i for i in main.instructions() if i.opcode == "call"]
        q = ModRefQuery(calls[1], TemporalRelation.SAME, v["w"], None)
        assert self._orch(ctx).handle(q).result is ModRefResult.NO_MOD_REF


class TestDefaultModuleList:
    def test_thirteen_modules(self):
        m = parse_module("func @main() -> i32 {\nentry:\n  ret i32 0\n}\n")
        modules = default_memory_modules(AnalysisContext(m))
        assert len(modules) == 13
        assert not any(mod.is_speculative for mod in modules)
        assert len({mod.name for mod in modules}) == 13
