"""Predictive cost-model scheduler tests: the measured-duration LPT
upgrade and prepared-module affinity placement.

Pins the four load-bearing properties of the cost model PR:

- **One batched sqlite read** prices an entire batch
  (``lookup_durations_many``): a query-count regression so per-loop
  probes can never creep back in;
- **EWMA blending and the static prior**: measured history blends
  0.8/0.2 with the calibrated static estimate, missing or pruned
  history degrades to exactly the static LPT rank, the setup
  sentinel rides the same table without leaking into rosters;
- **Deterministic tie-breaks**: equal-weight tickets execute in
  ``(module, loop)`` order regardless of submission order (and hence
  of hash seed);
- **Affinity placement with steal-when-idle**: setup-charged tickets
  prefer slots whose modeled prepared-LRU holds the module, an idle
  slot still always takes work (counted as a steal), and — the
  acceptance property — cost-model-on answers are byte-identical to
  cost-model-off on real workloads, including all 16 at once.
"""

import tempfile
import threading
import time
from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.service import (
    BatchScheduler,
    CostModel,
    ResultCache,
    SETUP_LOOP_KEY,
    request_for_workload,
    reset_prepared_cache,
)
from repro.service.costmodel import DEFAULT_SECONDS_PER_WEIGHT
from repro.service.engine import Ticket, WorkEngine, lpt_weight
from repro.service.telemetry import ServiceTelemetry


# -- satellite: one batched sqlite read per request --------------------------

class TestBatchedDurationReads:
    def _seeded_cache(self, tmp_path, lineages):
        cache = ResultCache(str(tmp_path / "cache"))
        for i, lineage in enumerate(lineages):
            cache.record_durations(
                f"v{i}", lineage,
                {f"@f{i}:%l": 0.5 + i, SETUP_LOOP_KEY: 0.1 * (i + 1)})
        return cache

    def test_lookup_durations_many_is_one_query(self, tmp_path):
        """The whole batch prices with ONE parameterized SELECT —
        the regression gate against per-loop (or per-key) probes."""
        lineages = [f"lin{i}" for i in range(5)]
        cache = self._seeded_cache(tmp_path, lineages)
        statements = []
        cache._conn.set_trace_callback(statements.append)
        try:
            out = cache.lookup_durations_many(lineages)
        finally:
            cache._conn.set_trace_callback(None)
        cache.close()
        selects = [s for s in statements if s.lstrip().upper()
                   .startswith("SELECT")]
        assert len(selects) == 1, selects
        assert set(out) == set(lineages)

    def test_batched_read_matches_singular_reads(self, tmp_path):
        lineages = [f"lin{i}" for i in range(4)]
        cache = self._seeded_cache(tmp_path, lineages)
        many = cache.lookup_durations_many(lineages + ["absent", ""])
        for lineage in lineages:
            assert many[lineage] == cache.lookup_durations(lineage)
        assert "absent" not in many  # no empty placeholder rows
        assert "" not in many
        cache.close()

    def test_freshest_row_wins_within_batch(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.record_durations("v1", "lin", {"@f:%l": 1.0})
        time.sleep(0.02)  # distinct updated_at
        cache.record_durations("v2", "lin", {"@f:%l": 9.0})
        looked = cache.lookup_durations_many(["lin"])["lin"]
        # v2's EWMA-free first sample is the freshest row for @f:%l.
        assert looked["@f:%l"] == pytest.approx(9.0)
        cache.close()


# -- EWMA blending, static fallback, the setup sentinel ----------------------

class _StubCache:
    """A durations table stub: predict_batch sees exactly `rows`."""

    def __init__(self, rows):
        self.rows = rows
        self.calls = 0

    def lookup_durations_many(self, lineage_keys):
        self.calls += 1
        return {k: dict(v) for k, v in self.rows.items()
                if k in lineage_keys}


class TestPredictions:
    def test_static_prior_when_no_history(self):
        model = CostModel(_StubCache({}))
        pred = model.predict_batch({"k": "lin"})["k"]
        assert pred.roster == ()
        w = lpt_weight(0.5, 1_000_000)
        assert (model.predict_loop(pred, "@f:%l", w)
                == pytest.approx(DEFAULT_SECONDS_PER_WEIGHT * w))
        # Pruned/empty durations: ordering degrades to static LPT —
        # the prediction scales every weight by one shared ratio.
        w2 = lpt_weight(0.9, 5_000)
        assert (model.predict_loop(pred, "@g:%l", w2)
                < model.predict_loop(pred, "@f:%l", w))

    def test_measured_blends_with_static_prior(self):
        model = CostModel(_StubCache({"lin": {"@f:%l": 2.0}}))
        # Calibrate the ratio with one observation: 1s per 1000 weight.
        model.observe("lin", "@g:%l", 1.0, static_weight=1000.0)
        pred = model.predict_batch({"k": "lin"})["k"]
        got = model.predict_loop(pred, "@f:%l", 500.0)
        assert got == pytest.approx(0.8 * 2.0 + 0.2 * (500.0 / 1000.0))

    def test_pure_measured_when_no_static_weight(self):
        model = CostModel(_StubCache({"lin": {"@f:%l": 2.0}}))
        assert model.predict_loop(
            model.predict_batch({"k": "lin"})["k"], "@f:%l", 0.0) == 2.0

    def test_setup_sentinel_feeds_setup_not_roster(self):
        model = CostModel(_StubCache(
            {"lin": {"@f:%l": 2.0, SETUP_LOOP_KEY: 0.3}}))
        pred = model.predict_batch({"k": "lin"})["k"]
        assert pred.setup_s == pytest.approx(0.3)
        assert pred.roster == ("@f:%l",)

    def test_memo_overlays_disk_rows(self):
        """Live observations (this daemon's unflushed measurements)
        beat the stale disk EWMA."""
        model = CostModel(_StubCache({"lin": {"@f:%l": 2.0}}))
        model.observe("lin", "@f:%l", 6.0)          # first sample: raw
        model.observe("lin", "@f:%l", 2.0)          # EWMA 0.5 -> 4.0
        pred = model.predict_batch({"k": "lin"})["k"]
        assert pred.loop_s["@f:%l"] == pytest.approx(4.0)

    def test_ratio_calibration_first_sample_replaces(self):
        model = CostModel(_StubCache({}))
        model.observe("lin", "@a:%l", 2.0, static_weight=1000.0)
        assert model.stats()["seconds_per_weight"] == pytest.approx(0.002)
        model.observe("lin", "@b:%l", 1.0, static_weight=1000.0)
        # EWMA at 0.2: 0.2*0.001 + 0.8*0.002
        assert model.stats()["seconds_per_weight"] == pytest.approx(0.0018)

    def test_cache_failure_never_blocks_scheduling(self):
        class _Broken:
            def lookup_durations_many(self, keys):
                raise RuntimeError("disk gone")

        model = CostModel(_Broken())
        pred = model.predict_batch({"k": "lin"})["k"]
        assert pred.roster == () and pred.setup_s == 0.0


# -- satellite: deterministic LPT tie-break ----------------------------------

class _FakeRequest:
    def __init__(self, name):
        self.name = name
        self.system = "scaf"

    def version_key(self):
        return self.name


class _FakeTask:
    def __init__(self, workload, loop):
        self.request = _FakeRequest(workload)
        self.loop = loop
        self.prepared_cache_size = 4


class TestDeterministicTieBreak:
    def _execution_order(self, specs):
        order, outcomes = [], []

        def runner(task):
            order.append((task.request.name, task.loop))
            return SimpleNamespace(prepared_hit=False, spans=[])

        engine = WorkEngine("inline", 0, max_pending=1,
                            telemetry=ServiceTelemetry(1),
                            loop_runner=runner)
        try:
            engine.submit([
                Ticket(_FakeTask(workload, loop), key=workload,
                       weight=weight,
                       deliver=lambda t, o, r, e: outcomes.append(o))
                for workload, loop, weight in specs])
            assert engine.drain(timeout_s=10.0)
        finally:
            engine.close()
        assert all(o == "ok" for o in outcomes)
        return order

    def test_equal_weights_break_by_module_then_loop(self):
        """Ties resolve ``(module, loop)`` — a property of the ticket
        *contents*, so it holds under any hash seed and any
        submission order (the old seq tie-break froze whatever order
        the fan-out loop happened to iterate keys in)."""
        specs = [(m, loop, 7.5)
                 for m in ("zeta", "alpha", "mid")
                 for loop in ("@b:%l", "@a:%l")]
        expected = sorted((m, loop) for m, loop, _ in specs)
        assert self._execution_order(specs) == expected
        assert self._execution_order(list(reversed(specs))) == expected

    def test_weight_still_dominates_the_tie_break(self):
        specs = [("zzz", "@z:%l", 9.0), ("aaa", "@a:%l", 1.0),
                 ("mmm", "@m:%l", 5.0)]
        assert self._execution_order(specs) == [
            ("zzz", "@z:%l"), ("mmm", "@m:%l"), ("aaa", "@a:%l")]


# -- affinity placement + steal-when-idle ------------------------------------

class TestAffinityPlacement:
    def _run(self, tickets_spec, workers=2):
        """tickets_spec: (module, loop, weight, predicted_setup)."""
        lock = threading.Lock()
        ran = []

        def runner(task):
            with lock:
                ran.append((task.request.name, task.loop,
                            threading.get_ident()))
            time.sleep(0.05)
            return SimpleNamespace(prepared_hit=True, spans=[])

        telemetry = ServiceTelemetry(workers)
        engine = WorkEngine("thread", workers, max_pending=2 * workers,
                            telemetry=telemetry, loop_runner=runner)
        outcomes = []
        try:
            engine.submit([
                Ticket(_FakeTask(module, loop), key=module, weight=weight,
                       deliver=lambda t, o, r, e: outcomes.append(o),
                       predicted_setup=setup)
                for module, loop, weight, setup in tickets_spec])
            assert engine.drain(timeout_s=15.0)
        finally:
            engine.close()
        assert all(o == "ok" for o in outcomes)
        assert len(outcomes) == len(tickets_spec)
        return ran, telemetry.snapshot()

    def test_idle_slot_steals_rather_than_starve(self):
        """Four tasks of one module, two slots: affinity wants them
        colocated, but an idle slot must take work anyway — exactly
        one placement is a counted steal, and everything completes."""
        ran, snap = self._run(
            [("modA", f"@l{i}:%l", 1.0, 1.0) for i in range(4)])
        assert len(ran) == 4
        assert snap.prepared_affinity_misses == 2   # one per slot
        assert snap.prepared_affinity_hits == 2     # revisits are free
        assert snap.prepared_affinity_steals == 1   # the idle-slot grab
        assert len({ident for _, _, ident in ran}) == 2

    def test_resident_module_outranks_heavier_stranger(self):
        """One slot, module A resident after its first task: A's
        follow-up (weight 1.0, no charge — resident) must run before
        module B's nominally heavier task (weight 1.2 minus the 0.5
        setup charge = 0.7 effective).  Without charges the static
        order would run B first — the exact reorder affinity buys."""
        spec = [("modA", "@a0:%l", 5.0, 0.5),
                ("modB", "@b0:%l", 1.2, 0.5),
                ("modA", "@a1:%l", 1.0, 0.5)]
        ran, snap = self._run(spec, workers=1)
        assert [(m, loop) for m, loop, _ in ran] == [
            ("modA", "@a0:%l"), ("modA", "@a1:%l"), ("modB", "@b0:%l")]
        assert snap.prepared_affinity_hits == 1      # @a1 on resident A
        assert snap.prepared_affinity_misses == 2    # first touches
        assert snap.prepared_affinity_steals == 0    # nothing to steal

        # Uncharged control: the same tickets in plain LPT order.
        static = [(m, loop, w, 0.0) for m, loop, w, _ in spec]
        ran, _ = self._run(static, workers=1)
        assert [(m, loop) for m, loop, _ in ran] == [
            ("modA", "@a0:%l"), ("modB", "@b0:%l"), ("modA", "@a1:%l")]

    def test_uncharged_tickets_keep_plain_lpt_cost(self):
        """No setup predictions queued -> placement is a plain
        priority pop (static mode's byte-identical fast path); the
        affinity counters still record placements, never steals."""
        ran, snap = self._run(
            [("modA", f"@l{i}:%l", float(4 - i), 0.0) for i in range(4)],
            workers=1)
        assert [loop for _, loop, _ in ran] == [
            "@l0:%l", "@l1:%l", "@l2:%l", "@l3:%l"]
        assert snap.prepared_affinity_steals == 0


# -- satellite: cost-model-on == cost-model-off, byte for byte ---------------

#: The cheap end of the corpus: fast enough for hypothesis to run the
#: full analysis pipeline repeatedly under drawn duration tables.
CHEAP_WORKLOADS = ("129.compress", "164.gzip", "429.mcf", "179.art")


def _identity_bytes(answer_lists):
    """Byte-exact serialization of everything that must not change
    (identity excludes latency/provenance by construction)."""
    return repr([[a.identity() for a in answers]
                 for answers in answer_lists]).encode()


def _run_real(requests, cache=None, cost_model=False, workers=0,
              executor="inline"):
    reset_prepared_cache()  # inline runs share this process's LRU
    scheduler = BatchScheduler(workers=workers, executor=executor,
                               cache=cache, mode="queue",
                               incremental=False, cost_model=cost_model)
    try:
        return scheduler.run_batch(requests), scheduler
    finally:
        scheduler.close()


class TestCostModelParity:
    @pytest.fixture(scope="class")
    def baseline(self):
        requests = [request_for_workload(n) for n in CHEAP_WORKLOADS]
        answers, _ = _run_real(requests, cost_model=False)
        rosters = {req.name: [a.loop for a in answer_list]
                   for req, answer_list in zip(requests, answers)}
        fractions = {req.name: {a.loop: a.time_fraction
                                for a in answer_list}
                     for req, answer_list in zip(requests, answers)}
        return {"identities": _identity_bytes(answers),
                "per_request": {req.name: _identity_bytes([answer_list])
                                for req, answer_list
                                in zip(requests, answers)},
                "rosters": rosters, "fractions": fractions}

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_predictions_never_change_answers(self, baseline, data):
        """The acceptance property: whatever the durations table
        claims — accurate, wildly wrong, or naming loops that do not
        exist — cost-model-on answers are byte-identical to
        cost-model-off.  Predictions reorder and pre-enqueue work;
        they must never alter it."""
        names = data.draw(st.lists(st.sampled_from(CHEAP_WORKLOADS),
                                   unique=True, min_size=1),
                          label="workloads")
        requests = [request_for_workload(n) for n in names]
        seconds = st.floats(min_value=1e-4, max_value=30.0,
                            allow_nan=False)
        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp)
            for request in requests:
                roster = baseline["rosters"][request.name]
                rows = {loop: data.draw(seconds, label=f"s:{loop}")
                        for loop in roster
                        if data.draw(st.booleans(), label=f"has:{loop}")}
                for g in range(data.draw(st.integers(0, 2),
                                         label="ghosts")):
                    rows[f"@ghost{g}:%stale"] = data.draw(
                        seconds, label=f"ghost{g}")
                rows[SETUP_LOOP_KEY] = data.draw(seconds, label="setup")
                cache.record_durations(request.version_key(),
                                       request.duration_lineage(), rows)
            answers, scheduler = _run_real(requests, cache=cache,
                                           cost_model=True)
            cache.close()
        got = [_identity_bytes([answer_list]) for answer_list in answers]
        assert got == [baseline["per_request"][n] for n in names]
        # Predicted-roster tasks launch with a placeholder 0.0 time
        # fraction; delivery must still carry the discovered profile.
        for request, answer_list in zip(requests, answers):
            want = baseline["fractions"][request.name]
            for a in answer_list:
                assert a.time_fraction == pytest.approx(want[a.loop])
        snap = scheduler.telemetry.snapshot()
        assert snap.loops_fallback == 0

    def test_all_16_workloads_byte_identical(self):
        """The full corpus through a real 4-process fleet, off vs on
        (durations warmed from the off run, so predicted rosters and
        affinity placement genuinely engage)."""
        from repro.workloads import ALL_WORKLOADS

        requests = [request_for_workload(w.name) for w in ALL_WORKLOADS]
        assert len(requests) == 16
        with tempfile.TemporaryDirectory() as tmp:
            base_cache = ResultCache(tmp + "/off")
            off, _ = _run_real(requests, cache=base_cache,
                               cost_model=False, workers=4,
                               executor="process")
            warm_cache = ResultCache(tmp + "/on")
            for request in requests:
                rows = base_cache.lookup_durations(
                    request.duration_lineage())
                assert rows, f"no durations persisted for {request.name}"
                warm_cache.record_durations(request.version_key(),
                                            request.duration_lineage(),
                                            rows)
            base_cache.close()
            on, scheduler = _run_real(requests, cache=warm_cache,
                                      cost_model=True, workers=4,
                                      executor="process")
            warm_cache.close()
        assert _identity_bytes(on) == _identity_bytes(off)
        snap = scheduler.telemetry.snapshot()
        assert snap.roster_predictions == 16
        assert snap.loops_fallback == 0
