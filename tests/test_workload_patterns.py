"""Attribution tests: each workload's declared idioms actually fire.

Every workload documents the mechanisms it was engineered to exercise
(`Workload.patterns`).  These tests tie the documentation to reality:
for the load-bearing pattern classes, the responsible module must
appear among the contributors/assertions of the workload's improved
queries (or resolve specific dependences, for the confluence-level
patterns).
"""

import pytest

from repro import build_confluence, build_scaf
from repro.clients import PDGClient, hot_loops
from repro.workloads import ALL_WORKLOADS, get_workload, prepare


def _improved(name):
    p = prepare(get_workload(name))
    scaf = build_scaf(p.module, p.profiles, p.context)
    conf = build_confluence(p.module, p.profiles, p.context)
    records = []
    for h in hot_loops(p.profiles):
        spdg = PDGClient(scaf).analyze_loop(h.loop)
        cpdg = PDGClient(conf).analyze_loop(h.loop)
        removed = {(id(r.src), id(r.dst), r.cross_iteration)
                   for r in cpdg.records if r.removed}
        records.extend(
            r for r in spdg.records
            if r.removed and (id(r.src), id(r.dst), r.cross_iteration)
            not in removed)
    return p, records


def _contributor_sets(records):
    return [frozenset(r.contributors) for r in records]


def _assertion_modules(records):
    modules = set()
    for r in records:
        option = r.usable_options.cheapest()
        if option:
            modules.update(a.module_id for a in option)
    return modules


class TestPatternAttribution:
    @pytest.mark.parametrize("name", [
        "052.alvinn", "175.vpr", "183.equake", "462.libquantum",
        "482.sphinx3", "519.lbm",
    ])
    def test_kill_flow_collaboration_fires(self, name):
        """Workloads tagged with the motivating kill pattern must show
        control-spec × kill-flow improved queries."""
        _, records = _improved(name)
        assert any({"control-spec", "kill-flow-aa"} <= c
                   for c in _contributor_sets(records)), name

    @pytest.mark.parametrize("name", [
        "175.vpr", "181.mcf", "183.equake", "456.hmmer", "429.mcf",
        "462.libquantum", "482.sphinx3", "525.x264", "544.nab",
    ])
    def test_read_only_via_points_to_fires(self, name):
        _, records = _improved(name)
        assert any({"read-only", "points-to"} <= c
                   for c in _contributor_sets(records)), name

    @pytest.mark.parametrize("name", [
        "175.vpr", "456.hmmer", "482.sphinx3", "544.nab",
    ])
    def test_short_lived_via_points_to_fires(self, name):
        _, records = _improved(name)
        assert any({"short-lived", "points-to"} <= c
                   for c in _contributor_sets(records)), name

    def test_unique_access_paths_collaboration_in_mcf429(self):
        _, records = _improved("429.mcf")
        assert any({"unique-access-paths-aa", "control-spec"} <= c
                   for c in _contributor_sets(records))

    def test_no_capture_collaboration_in_nab(self):
        _, records = _improved("544.nab")
        assert any("no-capture-global-aa" in c
                   for c in _contributor_sets(records))

    @pytest.mark.parametrize("name", [
        "056.ear", "129.compress", "164.gzip", "179.art",
    ])
    def test_saturated_workloads_have_no_improved_queries(self, name):
        _, records = _improved(name)
        assert records == [], name

    def test_improved_assertions_are_cheap(self):
        """Every SCAF improvement is backed by cheap-to-validate
        assertions — never by prohibitive points-to or memory
        speculation (the paper's core economic claim)."""
        from repro.query import PROHIBITIVE_COST
        for name in ("183.equake", "544.nab", "175.vpr"):
            _, records = _improved(name)
            for r in records:
                assert r.validation_cost < PROHIBITIVE_COST
                mods = _assertion_modules([r])
                assert "memory-speculation" not in mods
                assert "points-to" not in mods


class TestConfluencePatterns:
    @pytest.mark.parametrize("name", [
        "129.compress", "164.gzip", "175.vpr", "181.mcf",
    ])
    def test_control_spec_direct_fires_in_confluence(self, name):
        """Dead-path endpoints resolve without collaboration: the
        confluence system must remove some queries with control-spec
        assertions."""
        p = prepare(get_workload(name))
        conf = build_confluence(p.module, p.profiles, p.context)
        found = False
        for h in hot_loops(p.profiles):
            pdg = PDGClient(conf).analyze_loop(h.loop)
            for r in pdg.records:
                if r.speculative:
                    option = r.usable_options.cheapest()
                    if any(a.module_id == "control-spec" for a in option):
                        found = True
        assert found, name

    @pytest.mark.parametrize("name", ["179.art", "525.x264"])
    def test_residue_fires_in_confluence(self, name):
        p = prepare(get_workload(name))
        conf = build_confluence(p.module, p.profiles, p.context)
        found = False
        for h in hot_loops(p.profiles):
            pdg = PDGClient(conf).analyze_loop(h.loop)
            for r in pdg.records:
                if r.speculative:
                    option = r.usable_options.cheapest()
                    if any(a.module_id == "pointer-residue"
                           for a in option):
                        found = True
        assert found, name

    @pytest.mark.parametrize("name", ["482.sphinx3"])
    def test_value_prediction_fires_in_confluence(self, name):
        p = prepare(get_workload(name))
        conf = build_confluence(p.module, p.profiles, p.context)
        found = False
        for h in hot_loops(p.profiles):
            pdg = PDGClient(conf).analyze_loop(h.loop)
            for r in pdg.records:
                if r.speculative:
                    option = r.usable_options.cheapest()
                    if any(a.module_id == "value-prediction"
                           for a in option):
                        found = True
        assert found, name
