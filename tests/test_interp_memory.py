"""Unit tests for the simulated memory model."""

import pytest

from repro.interp import (
    GLOBAL_BASE,
    HEAP_BASE,
    MemoryFault,
    STACK_BASE,
    SimulatedMemory,
)
from repro.ir import ArrayType, F32, F64, I16, I32, I64, I8, StructType, \
    pointer_to


@pytest.fixture
def mem():
    return SimulatedMemory()


class TestAllocation:
    def test_segments(self, mem):
        g = mem.allocate(16, "global")
        s = mem.allocate(16, "stack")
        h = mem.allocate(16, "heap")
        assert GLOBAL_BASE <= g.base < STACK_BASE
        assert STACK_BASE <= s.base < HEAP_BASE
        assert h.base >= HEAP_BASE

    def test_alignment(self, mem):
        for _ in range(5):
            obj = mem.allocate(3, "heap")
            assert obj.base % 16 == 0

    def test_zero_size_clamped(self, mem):
        obj = mem.allocate(0, "heap")
        assert obj.size == 1

    def test_negative_size_faults(self, mem):
        with pytest.raises(MemoryFault):
            mem.allocate(-1, "heap")

    def test_serials_monotonic(self, mem):
        a = mem.allocate(8, "heap")
        b = mem.allocate(8, "heap")
        assert b.serial > a.serial


class TestObjectLookup:
    def test_object_at_interior(self, mem):
        obj = mem.allocate(64, "heap")
        assert mem.object_at(obj.base) is obj
        assert mem.object_at(obj.base + 63) is obj
        assert mem.object_at(obj.base + 64) is not obj

    def test_object_at_unmapped(self, mem):
        assert mem.object_at(0x1234) is None

    def test_dead_object_not_found(self, mem):
        obj = mem.allocate(8, "heap")
        mem.free(obj.base)
        assert mem.object_at(obj.base) is None

    def test_free_requires_base(self, mem):
        obj = mem.allocate(8, "heap")
        with pytest.raises(MemoryFault):
            mem.free(obj.base + 4)

    def test_free_of_stack_faults(self, mem):
        obj = mem.allocate(8, "stack")
        with pytest.raises(MemoryFault):
            mem.free(obj.base)


class TestTypedAccess:
    def test_integer_round_trip(self, mem):
        obj = mem.allocate(32, "heap")
        for ty, value in ((I8, -5), (I16, 1000), (I32, -70000),
                          (I64, 2**40)):
            mem.write_value(obj.base, ty, value)
            assert mem.read_value(obj.base, ty) == value

    def test_float_round_trip(self, mem):
        obj = mem.allocate(16, "heap")
        mem.write_value(obj.base, F64, 3.25)
        assert mem.read_value(obj.base, F64) == 3.25
        mem.write_value(obj.base + 8, F32, 1.5)
        assert mem.read_value(obj.base + 8, F32) == 1.5

    def test_pointer_round_trip(self, mem):
        obj = mem.allocate(8, "heap")
        ptr_ty = pointer_to(I32)
        mem.write_value(obj.base, ptr_ty, 0x40001234)
        assert mem.read_value(obj.base, ptr_ty) == 0x40001234

    def test_little_endian_layout(self, mem):
        obj = mem.allocate(4, "heap")
        mem.write_value(obj.base, I32, 0x01020304)
        assert mem.read_bytes(obj.base, 4) == b"\x04\x03\x02\x01"

    def test_out_of_bounds_read_faults(self, mem):
        obj = mem.allocate(4, "heap")
        with pytest.raises(MemoryFault):
            mem.read_value(obj.base + 1, I32)

    def test_negative_int_wraps_on_store(self, mem):
        obj = mem.allocate(1, "heap")
        mem.write_value(obj.base, I8, -1)
        assert mem.read_bytes(obj.base, 1) == b"\xff"


class TestInitializers:
    def test_scalar(self, mem):
        obj = mem.allocate(4, "global")
        mem.initialize(obj, I32, 42)
        assert mem.read_value(obj.base, I32) == 42

    def test_array(self, mem):
        ty = ArrayType(I32, 3)
        obj = mem.allocate(ty.size, "global")
        mem.initialize(obj, ty, [1, 2, 3])
        for i, expected in enumerate((1, 2, 3)):
            assert mem.read_value(obj.base + 4 * i, I32) == expected

    def test_string(self, mem):
        ty = ArrayType(I8, 6)
        obj = mem.allocate(ty.size, "global")
        mem.initialize(obj, ty, "hey")
        assert mem.read_bytes(obj.base, 4) == b"hey\x00"

    def test_struct(self, mem):
        st = StructType("p", [I32, F64])
        obj = mem.allocate(st.size, "global")
        mem.initialize(obj, st, [7, 1.5])
        assert mem.read_value(obj.base, I32) == 7
        assert mem.read_value(obj.base + 4, F64) == 1.5

    def test_zero_init_default(self, mem):
        obj = mem.allocate(8, "global")
        mem.initialize(obj, I64, None)
        assert mem.read_value(obj.base, I64) == 0
