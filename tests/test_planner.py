"""Tests for the speculative DOALL planner (§3.4 global reasoning)."""

import pytest

from repro import build_caf, build_scaf
from repro.analysis import AnalysisContext
from repro.clients import DoallPlanner, hot_loops, plan_hot_loops
from repro.ir import parse_module
from repro.profiling import run_profilers
from repro.query import OptionSet, SpeculativeAssertion
from repro.clients.pdg import DependenceRecord
from repro.query import ModRefResult, QueryResponse


DOALL_SOURCE = """
global @in_ptr : f64* = zeroinit
global @out_ptr : f64* = zeroinit
global @clamp_flag : i32 = 0
global @clamps : i32 = 0

declare @malloc(i64) -> i8*

func @main() -> i32 {
entry:
  %in.raw = call @malloc(i64 1040)
  %in.f = bitcast i8* %in.raw to f64*
  %in.base = gep f64* %in.f, i64 2
  store f64* %in.base, f64** @in_ptr
  %out.raw = call @malloc(i64 1040)
  %out.f = bitcast i8* %out.raw to f64*
  %out.base = gep f64* %out.f, i64 2
  store f64* %out.base, f64** @out_ptr
  br %fill
fill:
  %fi = phi i64 [0, %entry], [%fi2, %fill]
  %f.slot = gep f64* %in.base, i64 %fi
  %fv = sitofp i64 %fi to f64
  store f64 %fv, f64* %f.slot
  %fi2 = add i64 %fi, 1
  %fc = icmp slt i64 %fi2, 128
  condbr i1 %fc, %fill, %head
head:
  br %map
map:
  %i = phi i64 [0, %head], [%i2, %map.latch]
  %cf = load i32* @clamp_flag
  %rare = icmp ne i32 %cf, 0
  condbr i1 %rare, %clamp, %map.body
clamp:
  %cl = load i32* @clamps
  %cl2 = add i32 %cl, 1
  store i32 %cl2, i32* @clamps
  br %map.body
map.body:
  %in = load f64** @in_ptr
  %out = load f64** @out_ptr
  %src = gep f64* %in, i64 %i
  %x = load f64* %src
  %y = fmul f64 %x, 2.0
  %dst = gep f64* %out, i64 %i
  store f64 %y, f64* %dst
  br %map.latch
map.latch:
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 128
  condbr i1 %c, %map, %exit
exit:
  ret i32 0
}
"""

REDUCTION_SOURCE = """
global @acc : f64 = 0.0
global @data : [64 x f64] = zeroinit

func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i2, %loop]
  %slot = gep [64 x f64]* @data, i64 0, i64 %i
  %v = load f64* %slot
  %a0 = load f64* @acc
  %a1 = fadd f64 %a0, %v
  store f64 %a1, f64* @acc
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 64
  condbr i1 %c, %loop, %exit
exit:
  ret i32 0
}
"""


def _prepare(text):
    module = parse_module(text)
    context = AnalysisContext(module)
    profiles = run_profilers(module, context)
    return module, context, profiles


class TestDoallPlanner:
    def test_speculatively_doall_loop(self):
        module, context, profiles = _prepare(DOALL_SOURCE)
        scaf = build_scaf(module, profiles, context)
        fn = module.get_function("main")
        loop = context.loop_info(fn).loop_with_header(fn.get_block("map"))
        plan = DoallPlanner(scaf).plan(loop)
        assert plan.doall
        assert plan.blockers == []
        assert plan.assertions  # speculation was required
        assert plan.validation_cost > 0
        assert "DOALL-able" in plan.summary()

    def test_same_loop_blocked_without_speculation(self):
        module, context, profiles = _prepare(DOALL_SOURCE)
        caf = build_caf(module, context, profiles)
        fn = module.get_function("main")
        loop = context.loop_info(fn).loop_with_header(fn.get_block("map"))
        plan = DoallPlanner(caf).plan(loop)
        assert not plan.doall
        assert plan.blockers
        assert plan.assertions == []

    def test_reduction_blocks_doall(self):
        module, context, profiles = _prepare(REDUCTION_SOURCE)
        scaf = build_scaf(module, profiles, context)
        fn = module.get_function("main")
        loop = context.loop_info(fn).loops[0]
        plan = DoallPlanner(scaf).plan(loop)
        assert not plan.doall
        # The accumulator recurrence is a genuine blocker.
        names = {r.src.opcode for r in plan.blockers} | \
            {r.dst.opcode for r in plan.blockers}
        assert "store" in names

    def test_cost_budget_rejects_expensive_plans(self):
        module, context, profiles = _prepare(DOALL_SOURCE)
        scaf = build_scaf(module, profiles, context)
        fn = module.get_function("main")
        loop = context.loop_info(fn).loop_with_header(fn.get_block("map"))
        plan = DoallPlanner(scaf, cost_budget=0.0).plan(loop)
        assert not plan.doall

    def test_shared_assertions_counted_once(self):
        """One control-spec assertion discharges several dependences
        but appears once in the plan."""
        module, context, profiles = _prepare(DOALL_SOURCE)
        scaf = build_scaf(module, profiles, context)
        fn = module.get_function("main")
        loop = context.loop_info(fn).loop_with_header(fn.get_block("map"))
        plan = DoallPlanner(scaf).plan(loop)
        control = [a for a in plan.assertions
                   if a.module_id == "control-spec"]
        assert len(control) <= 1

    def test_plan_hot_loops_convenience(self):
        module, context, profiles = _prepare(DOALL_SOURCE)
        scaf = build_scaf(module, profiles, context)
        plans = plan_hot_loops(scaf, hot_loops(profiles))
        assert plans
        assert any(p.doall for p in plans
                   if p.loop.header.name == "map")


class TestOptionSelection:
    def _record(self, options):
        from repro.query import ModRefResult, OptionSet, QueryResponse
        from repro.ir import GlobalVariable, I32, LoadInst, StoreInst, \
            const_int
        g = GlobalVariable("g", I32)
        src = StoreInst(const_int(1), g)
        dst = LoadInst(g, "v")
        response = QueryResponse(ModRefResult.NO_MOD_REF, options)
        return DependenceRecord(src, dst, True, response, options,
                                frozenset())

    def test_conflicting_option_avoided(self):
        a = SpeculativeAssertion("read-only", cost=1.0,
                                 conflict_points=frozenset({"site"}))
        b = SpeculativeAssertion("short-lived", cost=5.0,
                                 conflict_points=frozenset({"site"}))
        cheap_but_conflicting = OptionSet.single(a)
        expensive_but_fine = OptionSet.single(b)

        from repro.core.framework import DependenceAnalysis
        planner = DoallPlanner.__new__(DoallPlanner)
        planner.cost_budget = None
        selected = {a}
        # record whose only options are {a} (conflict-free w/ selected)
        # and {b} (conflicts with a):
        record = self._record(cheap_but_conflicting | expensive_but_fine)
        option = planner._select_option(record, {b})
        # with b selected, {b} is free and {a} conflicts -> choose {b}
        assert option == frozenset({b})

    def test_marginal_cost_prefers_shared(self):
        shared = SpeculativeAssertion("control-spec", cost=10.0)
        fresh = SpeculativeAssertion("value-prediction", cost=1.0)
        record = self._record(OptionSet.single(shared)
                              | OptionSet.single(fresh))
        planner = DoallPlanner.__new__(DoallPlanner)
        planner.cost_budget = None
        # Nothing selected: the 1.0 option wins.
        assert planner._select_option(record, set()) == frozenset({fresh})
        # With the expensive assertion already selected, it is free.
        assert planner._select_option(record, {shared}) == \
            frozenset({shared})
