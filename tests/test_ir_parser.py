"""Tests for the textual IR parser and printer round trip."""

import pytest

from repro.ir import (
    ArrayType,
    CondBranchInst,
    F64,
    GEPInst,
    I32,
    I64,
    LoadInst,
    ParseError,
    PhiInst,
    StoreInst,
    format_module,
    parse_module,
    pointer_to,
    verify_module,
)


SIMPLE = """
func @main() -> i32 {
entry:
  ret i32 0
}
"""


class TestTopLevel:
    def test_empty_function(self):
        m = parse_module(SIMPLE)
        assert "main" in m.functions
        verify_module(m)

    def test_globals(self):
        m = parse_module("""
global @x : i32 = 42
const global @tab : [3 x f64] = [1.0, 2.0, 3.0]
global @buf : [8 x i8] = zeroinit
""")
        assert m.get_global("x").initializer == 42
        assert m.get_global("tab").is_constant
        assert m.get_global("tab").initializer == [1.0, 2.0, 3.0]
        assert m.get_global("buf").initializer is None

    def test_multiline_initializer(self):
        m = parse_module("""
global @t : [4 x i32] = [
  1, 2,
  3, 4 ]
""")
        assert m.get_global("t").initializer == [1, 2, 3, 4]

    def test_struct_and_recursive_struct(self):
        m = parse_module("""
struct %node { i64, %node* }
""")
        st = m.get_struct("node")
        assert st.size == 16
        assert st.fields[1].pointee is st

    def test_declare_with_attributes(self):
        m = parse_module("declare @sqrt(f64) -> f64 [pure]\n")
        assert m.get_function("sqrt").is_pure

    def test_duplicate_function_rejected(self):
        with pytest.raises(ValueError):
            parse_module(SIMPLE + SIMPLE)

    def test_unknown_toplevel(self):
        with pytest.raises(ParseError):
            parse_module("banana @x\n")


class TestInstructions:
    def test_full_instruction_coverage(self):
        m = parse_module("""
struct %pair { i32, f64 }
global @g : i32 = 1
declare @malloc(i64) -> i8*

func @helper(i32 %x) -> i32 {
entry:
  ret i32 %x
}

func @main() -> i32 {
entry:
  %a = alloca %pair
  %f = gep %pair* %a, i64 0, i64 1
  store f64 2.5, f64* %f
  %v = load f64* %f
  %s = fadd f64 %v, 1.0
  %c = fcmp olt f64 %s, 10.0
  %i = load i32* @g
  %j = add i32 %i, 3
  %k = sub i32 %j, 1
  %m = mul i32 %k, 2
  %n = xor i32 %m, 255
  %sh = shl i32 %n, 1
  %t = trunc i32 %sh to i8
  %z = zext i8 %t to i64
  %sx = sext i8 %t to i32
  %fp = sitofp i32 %sx to f64
  %ip = fptosi f64 %fp to i32
  %raw = call @malloc(i64 16)
  %p = bitcast i8* %raw to i32*
  %pi = ptrtoint i32* %p to i64
  %pp = inttoptr i64 %pi to i32*
  %sel = select i1 %c, i32 %j, i32 %k
  %h = call @helper(i32 %sel)
  switch i32 %h, %exit [1: %one, 2: %two]
one:
  br %exit
two:
  unreachable
exit:
  %r = phi i32 [0, %entry], [1, %one]
  condbr i1 %c, %ret, %other
other:
  br %ret
ret:
  ret i32 %r
}
""")
        verify_module(m)
        # Round trip through the printer.
        text = format_module(m)
        m2 = parse_module(text)
        verify_module(m2)
        assert format_module(m2) == text

    def test_forward_reference_in_phi(self):
        m = parse_module("""
func @f() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i.next, %loop]
  %i.next = add i32 %i, 1
  %c = icmp slt i32 %i.next, 5
  condbr i1 %c, %loop, %out
out:
  ret i32 %i.next
}
""")
        verify_module(m)
        phi = m.get_function("f").get_block("loop").phis[0]
        assert isinstance(phi, PhiInst)
        names = {v.name for v, _ in phi.incoming if hasattr(v, "name")}
        assert "i.next" in names

    def test_undefined_value_rejected(self):
        with pytest.raises(ParseError):
            parse_module("""
func @f() -> i32 {
entry:
  ret i32 %nope
}
""")

    def test_unknown_callee_rejected(self):
        with pytest.raises(ParseError):
            parse_module("""
func @f() -> void {
entry:
  call @ghost(i32 1)
  ret
}
""")

    def test_null_operand(self):
        m = parse_module("""
func @f(i32* %p) -> i1 {
entry:
  %c = icmp eq i32* %p, null
  ret i1 %c
}
""")
        verify_module(m)

    def test_redundant_type_annotation_tolerated(self):
        m = parse_module("""
func @f() -> i32 {
entry:
  %a = add i32 1, i32 2
  %s = select i1 1, i32 %a, i32 5
  ret i32 %s
}
""")
        verify_module(m)

    def test_comments_ignored(self):
        m = parse_module("""
; a module comment
func @f() -> i32 {
entry:
  ret i32 7   ; inline comment
}
""")
        verify_module(m)


class TestRoundTripWorkloads:
    def test_all_workloads_round_trip(self):
        from repro.workloads import ALL_WORKLOADS
        for wl in ALL_WORKLOADS:
            m = wl.build()
            text = format_module(m)
            m2 = parse_module(text)
            verify_module(m2)
            assert format_module(m2) == text, wl.name
