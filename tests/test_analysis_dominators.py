"""Tests for dominator and post-dominator trees, including pruned CFGs."""

import pytest

from repro.analysis import DominatorTree
from repro.ir import parse_module


SOURCE = """
func @f(i1 %c) -> i32 {
entry:
  condbr i1 %c, %left, %right
left:
  br %join
right:
  br %join
join:
  condbr i1 %c, %tail, %other
tail:
  br %exit
other:
  br %exit
exit:
  ret i32 0
}
"""

LOOP = """
func @g() -> i32 {
entry:
  br %header
header:
  %i = phi i32 [0, %entry], [%i2, %latch]
  %c = icmp slt i32 %i, 10
  condbr i1 %c, %body, %exit
body:
  condbr i1 %c, %then, %els
then:
  br %latch
els:
  br %latch
latch:
  %i2 = add i32 %i, 1
  br %header
exit:
  ret i32 %i
}
"""


def _fn(text):
    return next(iter(parse_module(text).defined_functions))


class TestDominators:
    def test_entry_dominates_all(self):
        fn = _fn(SOURCE)
        dt = DominatorTree.compute(fn)
        entry = fn.get_block("entry")
        for bb in fn.blocks:
            assert dt.dominates(entry, bb)

    def test_branch_sides_do_not_dominate_join(self):
        fn = _fn(SOURCE)
        dt = DominatorTree.compute(fn)
        assert not dt.dominates(fn.get_block("left"), fn.get_block("join"))
        assert not dt.dominates(fn.get_block("right"), fn.get_block("join"))
        assert dt.dominates(fn.get_block("entry"), fn.get_block("join"))

    def test_reflexive(self):
        fn = _fn(SOURCE)
        dt = DominatorTree.compute(fn)
        j = fn.get_block("join")
        assert dt.dominates(j, j)
        assert not dt.strictly_dominates(j, j)

    def test_idom_chain(self):
        fn = _fn(SOURCE)
        dt = DominatorTree.compute(fn)
        assert dt.idom[fn.get_block("join")] is fn.get_block("entry")
        assert dt.idom[fn.get_block("exit")] is fn.get_block("join")

    def test_loop_header_dominates_body(self):
        fn = _fn(LOOP)
        dt = DominatorTree.compute(fn)
        h = fn.get_block("header")
        for name in ("body", "then", "els", "latch", "exit"):
            assert dt.dominates(h, fn.get_block(name))

    def test_pruned_cfg_changes_dominance(self):
        """The motivating-example effect: removing one branch side makes
        the other side dominate the join."""
        fn = _fn(SOURCE)
        left = fn.get_block("left")
        right = fn.get_block("right")
        join = fn.get_block("join")
        dt_static = DominatorTree.compute(fn)
        assert not dt_static.dominates(right, join)
        dt_spec = DominatorTree.compute(fn, ignore=frozenset({left}))
        assert dt_spec.dominates(right, join)
        assert not dt_spec.contains(left)


class TestPostDominators:
    def test_exit_post_dominates_all(self):
        fn = _fn(SOURCE)
        pdt = DominatorTree.compute(fn, post=True)
        exit_bb = fn.get_block("exit")
        for bb in fn.blocks:
            assert pdt.dominates(exit_bb, bb)

    def test_sides_do_not_post_dominate_entry(self):
        fn = _fn(SOURCE)
        pdt = DominatorTree.compute(fn, post=True)
        assert not pdt.dominates(fn.get_block("left"), fn.get_block("entry"))
        assert pdt.dominates(fn.get_block("join"), fn.get_block("entry"))

    def test_pruned_post_dominance(self):
        fn = _fn(SOURCE)
        left = fn.get_block("left")
        pdt = DominatorTree.compute(fn, post=True,
                                    ignore=frozenset({left}))
        # With 'left' pruned, 'right' post-dominates 'entry'.
        assert pdt.dominates(fn.get_block("right"), fn.get_block("entry"))

    def test_loop_latch_post_dominates_body(self):
        fn = _fn(LOOP)
        pdt = DominatorTree.compute(fn, post=True)
        latch = fn.get_block("latch")
        assert pdt.dominates(latch, fn.get_block("body"))
        assert pdt.dominates(latch, fn.get_block("then"))


class TestInstructionLevel:
    def test_same_block_ordering(self):
        fn = _fn(LOOP)
        dt = DominatorTree.compute(fn)
        pdt = DominatorTree.compute(fn, post=True)
        latch = fn.get_block("latch")
        first, second = latch.instructions[0], latch.instructions[1]
        assert dt.dominates_instruction(first, second)
        assert not dt.dominates_instruction(second, first)
        assert pdt.dominates_instruction(second, first)
        assert not pdt.dominates_instruction(first, second)

    def test_cross_block(self):
        fn = _fn(LOOP)
        dt = DominatorTree.compute(fn)
        header_inst = fn.get_block("header").instructions[0]
        latch_inst = fn.get_block("latch").instructions[0]
        assert dt.dominates_instruction(header_inst, latch_inst)
        assert not dt.dominates_instruction(latch_inst, header_inst)
