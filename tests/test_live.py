"""Tests for the live ops plane (repro.obs.live / repro.obs.expo).

What this file pins:

- Prometheus exposition: golden text for a known registry, histogram
  bucket cumulativity, round-trip through the bundled strict parser,
  and rejection of malformed documents;
- rolling windows under a synthetic clock: totals, rates over the
  covered interval, bucket eviction at the window edge, merged
  percentiles;
- the flight recorder: ring eviction, slow-query gating (threshold
  and non-``ok`` outcomes), crash auto-dump to disk;
- NDJSON lifecycle logging (epoch + monotonic stamps), including the
  L2 cooldown entry/exit events off the tiered cache;
- the durations table: EWMA blending, freshest-wins lineage reads,
  and end-to-end persistence through a cached batch;
- the daemon end to end: ``metrics``/``dump`` verbs, per-client
  attribution, the plain-HTTP ``/metrics`` + ``/healthz`` listener
  (including the 503 drain transition), the drain-time flight dump,
  and the ``repro top`` / ``repro stats --flight`` CLI paths.
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.daemon import AnalysisDaemon, DaemonClient, DaemonConfig
from repro.obs.expo import (
    parse_prometheus,
    render_prometheus,
    sample_value,
    window_gauges,
)
from repro.obs.live import (
    FlightRecorder,
    JsonLogger,
    LiveOps,
    RollingWindow,
    render_top,
)
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.service import (
    AnalysisRequest,
    DependenceService,
    ResultCache,
    ServiceConfig,
    reset_prepared_cache,
)

from tests.test_daemon import gated_service, make_source


@pytest.fixture(autouse=True)
def _fresh():
    reset_prepared_cache()
    yield
    reset_prepared_cache()


# -- exposition ---------------------------------------------------------------

class TestExposition:
    def test_golden_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.counter("module_evals", module="KillFlowAA").inc(2)
        gauge = registry.gauge("queue_depth")
        gauge.inc(5)
        gauge.dec(2)
        text = render_prometheus(registry.snapshot())
        assert text == (
            "# TYPE repro_module_evals_total counter\n"
            'repro_module_evals_total{module="KillFlowAA"} 2\n'
            "# TYPE repro_requests_total counter\n"
            "repro_requests_total 3\n"
            "# TYPE repro_queue_depth gauge\n"
            "repro_queue_depth 3\n"
            "# TYPE repro_queue_depth_max gauge\n"
            "repro_queue_depth_max 5\n"
        )

    def test_histogram_renders_cumulative_and_round_trips(self):
        registry = MetricsRegistry()
        hist = registry.histogram("loop_latency_s", workload="w1")
        for seconds in (1e-5, 1e-4, 1e-4, 0.5):
            hist.record(seconds)
        text = render_prometheus(registry.snapshot())
        parsed = parse_prometheus(text)
        assert parsed["types"]["repro_loop_latency_s"] == "histogram"
        buckets = [(labels["le"], value)
                   for name, labels, value in parsed["samples"]
                   if name == "repro_loop_latency_s_bucket"]
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 4.0
        values = [v for _, v in buckets]
        assert values == sorted(values)  # cumulative
        assert sample_value(parsed, "repro_loop_latency_s_count",
                            workload="w1") == 4.0
        assert sample_value(parsed, "repro_loop_latency_s_sum",
                            workload="w1") == pytest.approx(0.50021)

    def test_round_trip_with_extras(self):
        registry = MetricsRegistry()
        registry.counter("cache_hits").inc(7)
        text = render_prometheus(
            registry.snapshot(),
            extra_counters={"daemon_jobs_completed": 2.0},
            extra_gauges={"window_tasks_rate{outcome=ok}": 1.5,
                          "daemon_uptime_s": 12.25})
        parsed = parse_prometheus(text)
        assert sample_value(parsed, "repro_cache_hits_total") == 7.0
        assert sample_value(parsed,
                            "repro_daemon_jobs_completed_total") == 2.0
        assert sample_value(parsed, "repro_window_tasks_rate",
                            outcome="ok") == 1.5
        assert sample_value(parsed, "repro_daemon_uptime_s") == 12.25
        assert sample_value(parsed, "repro_nope") is None

    def test_parser_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE a counter\na{b= 1\n")
        with pytest.raises(ValueError):  # sample without a TYPE
            parse_prometheus("orphan_total 1\n")
        with pytest.raises(ValueError):  # duplicate series
            parse_prometheus("# TYPE a counter\na 1\na 2\n")
        with pytest.raises(ValueError):  # duplicate TYPE
            parse_prometheus("# TYPE a counter\n# TYPE a gauge\n")

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("evals", module='sa"w\\x').inc()
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert sample_value(parsed, "repro_evals_total",
                            module='sa"w\\x') == 1.0

    def test_window_gauges_flatten(self):
        clock = _Clock()
        window = RollingWindow(window_s=10, bucket_s=1,
                               clock=clock)
        window.inc("tasks", outcome="ok", n=5)
        window.observe("task_latency_s", 0.25)
        clock.t = 2.0
        gauges = window_gauges(window.snapshot())
        assert gauges["window_tasks_rate{outcome=ok}"] == \
            pytest.approx(5 / 2.0)
        assert gauges["window_task_latency_s_count"] == 1
        assert 0.0 < gauges["window_task_latency_s_p95_s"] <= 0.25 * 1.01


# -- rolling window -----------------------------------------------------------

class _Clock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestRollingWindow:
    def test_totals_and_eviction_at_window_edge(self):
        clock = _Clock()
        window = RollingWindow(window_s=10, bucket_s=1, clock=clock)
        window.inc("tasks", outcome="ok")
        clock.t = 5.0
        window.inc("tasks", outcome="ok")
        assert window.total("tasks", outcome="ok") == 2
        clock.t = 10.5  # bucket at t=0 has aged out
        assert window.total("tasks", outcome="ok") == 1
        clock.t = 16.0  # both gone
        assert window.total("tasks", outcome="ok") == 0

    def test_rate_over_covered_interval(self):
        clock = _Clock()
        window = RollingWindow(window_s=60, bucket_s=1, clock=clock)
        window.inc("tasks", n=10)
        clock.t = 5.0
        # 10 events over 5s of uptime: not diluted by the empty 55s.
        assert window.rate("tasks") == pytest.approx(2.0)
        clock.t = 120.0
        assert window.rate("tasks") == 0.0

    def test_write_side_eviction_bounds_memory(self):
        clock = _Clock()
        window = RollingWindow(window_s=5, bucket_s=1, clock=clock)
        for i in range(50):
            clock.t = float(i)
            window.inc("tasks")
        assert len(window._buckets) <= window.slots

    def test_merged_percentiles(self):
        clock = _Clock()
        window = RollingWindow(window_s=30, bucket_s=1, clock=clock)
        for i in range(90):
            clock.t = float(i % 20)
            window.observe("task_latency_s", 0.001)
        for _ in range(10):
            window.observe("task_latency_s", 1.0)
        assert window.percentile("task_latency_s", 50) < 0.01
        assert window.percentile("task_latency_s", 99) > 0.1
        summary = window.snapshot()["histograms"]["task_latency_s"]
        assert summary["count"] == 100
        assert summary["max_s"] == 1.0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            RollingWindow(window_s=1, bucket_s=0)
        with pytest.raises(ValueError):
            RollingWindow(window_s=0.5, bucket_s=1)


# -- flight recorder ----------------------------------------------------------

class TestFlightRecorder:
    def test_ring_eviction(self):
        recorder = FlightRecorder(capacity=4, slow_threshold_s=99.0)
        for i in range(10):
            recorder.record(workload=f"w{i}", latency_s=0.01)
        counts = recorder.counts()
        assert counts["spans"] == 4
        assert counts["recorded"] == 10
        assert counts["evicted"] == 6
        dump = recorder.dump()
        assert [s["workload"] for s in dump["spans"]] == \
            ["w6", "w7", "w8", "w9"]
        assert dump["slow"] == []

    def test_slow_gating_threshold_and_outcome(self):
        recorder = FlightRecorder(capacity=16, slow_threshold_s=0.5)
        recorder.record(workload="fast", latency_s=0.01)
        recorder.record(workload="slow", latency_s=0.75)
        recorder.record(workload="bad", outcome="timeout",
                        latency_s=0.01)
        dump = recorder.dump()
        assert [s["workload"] for s in dump["slow"]] == ["slow", "bad"]

    def test_crash_auto_dump(self, tmp_path):
        path = tmp_path / "flight.json"
        recorder = FlightRecorder(capacity=8, slow_threshold_s=99.0,
                                  auto_dump_path=str(path))
        recorder.record(workload="ok1")
        recorder.record(workload="boom", outcome="failure",
                        latency_s=0.2)
        doc = json.loads(path.read_text())
        assert doc["reason"] == "failure"
        # The dump preserves the traffic *around* the crash.
        assert [s["workload"] for s in doc["spans"]] == ["ok1", "boom"]
        assert doc["slow"][0]["workload"] == "boom"

    def test_dump_to_file_atomic_and_counted(self, tmp_path):
        path = tmp_path / "d.json"
        recorder = FlightRecorder(capacity=2)
        recorder.record(workload="w")
        recorder.dump_to_file(str(path), reason="drain")
        doc = json.loads(path.read_text())
        assert doc["reason"] == "drain"
        assert recorder.counts()["dumps"] == 1
        assert list(tmp_path.iterdir()) == [path]  # no tmp leftovers


# -- NDJSON logging -----------------------------------------------------------

class TestJsonLogger:
    def test_event_lines(self):
        stream = io.StringIO()
        log = JsonLogger(stream)
        assert log.enabled
        log.event("worker_recycle", inflight_on_old_fleet=3)
        log.event("drain_begin")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "worker_recycle"
        assert first["inflight_on_old_fleet"] == 3
        assert first["t_epoch"] > 1e9
        assert "t_mono" in first

    def test_disabled_is_noop(self):
        log = JsonLogger(None)
        assert not log.enabled
        log.event("anything", n=1)  # must not raise

    def test_liveops_logs_sheds_and_failures(self):
        stream = io.StringIO()
        live = LiveOps(log=JsonLogger(stream))
        live.observe_shed("queue_depth", client="c1")
        live.observe_task(workload="w", outcome="timeout",
                          latency_s=2.0, client="c1")
        live.observe_task(workload="w", outcome="ok", latency_s=0.1)
        events = [json.loads(line)["event"]
                  for line in stream.getvalue().splitlines()]
        assert events == ["admission_shed", "task_timeout"]

    def test_l2_cooldown_events(self, tmp_path):
        from repro.cachetier import (
            FakeRespServer,
            TieredCache,
            backend_from_url,
        )
        server = FakeRespServer().start()
        stream = io.StringIO()
        registry = MetricsRegistry()
        cache = TieredCache(
            ResultCache(str(tmp_path)),
            backend_from_url(server.url, timeout_s=0.5),
            registry, reconnect_s=0.05)
        cache.on_event = JsonLogger(stream).event
        port = server.port
        try:
            server.stop()
            assert cache.lookup("vk-cold") is None  # L2 error -> enter
            server = FakeRespServer(port=port).start()
            time.sleep(0.1)  # past the cooldown
            assert cache.lookup("vk-cold") is None  # success -> exit
            events = [json.loads(line)["event"]
                      for line in stream.getvalue().splitlines()]
            assert events == ["l2_cooldown_enter", "l2_cooldown_exit"]
        finally:
            cache.close()
            server.stop()


# -- durations table ----------------------------------------------------------

class TestDurations:
    def test_record_blends_and_lookup(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.record_durations("v1", "lin", {"@f:%l": 1.0})
        assert cache.lookup_durations_exact("v1") == {"@f:%l": 1.0}
        cache.record_durations("v1", "lin", {"@f:%l": 3.0})
        # EWMA with alpha 0.5: 0.5*3 + 0.5*1.
        assert cache.lookup_durations_exact("v1") == {"@f:%l": 2.0}
        assert cache.lookup_durations("lin") == {"@f:%l": 2.0}
        cache.close()

    def test_lineage_freshest_wins(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.record_durations("v1", "lin", {"@f:%l": 1.0,
                                             "@f:%m": 4.0})
        time.sleep(0.02)  # distinct updated_at
        cache.record_durations("v2", "lin", {"@f:%l": 9.0})
        looked = cache.lookup_durations("lin")
        assert looked["@f:%l"] == 9.0   # newer version wins
        assert looked["@f:%m"] == 4.0   # older loop still predicted
        assert cache.lookup_durations("other") == {}
        cache.close()

    def test_invalidate_drops_durations(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.record_durations("v1", "lin", {"@f:%l": 1.0})
        cache.invalidate("v1")
        assert cache.lookup_durations_exact("v1") == {}
        cache.close()

    def test_batch_persists_durations(self, tmp_path):
        service = DependenceService(ServiceConfig(
            workers=0, executor="inline",
            cache_dir=str(tmp_path / "cache")))
        request = AnalysisRequest("timed", make_source())
        try:
            service.run_batch([request])
            looked = service.cache.lookup_durations(
                request.duration_lineage())
            assert looked, "batch did not persist loop durations"
            assert all(v >= 0.0 for v in looked.values())
        finally:
            service.close()


# -- the daemon's live plane, end to end -------------------------------------

def _live_daemon(tmp_path, **kwargs):
    config = DaemonConfig(
        addr=f"unix:{tmp_path}/live-test.sock",
        service=ServiceConfig(workers=0, executor="inline"),
        **kwargs)
    return AnalysisDaemon(config).start_background(), config.addr


def _http_get(url: str):
    try:
        response = urllib.request.urlopen(url, timeout=10)
        return response.status, response.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


class TestDaemonLiveOps:
    def test_metrics_verb_and_http_scrape(self, tmp_path):
        daemon, addr = _live_daemon(tmp_path, metrics_port=0,
                                    slow_threshold_s=0.0)
        try:
            with DaemonClient(addr, tag="alpha") as client:
                client.run_batch(
                    [AnalysisRequest("t", make_source())])
                text = client.metrics()
                dump = client.dump()
                stats = client.stats()
            parsed = parse_prometheus(text)
            # Windowed percentiles, daemon bookkeeping, per-client
            # series all present and typed.
            assert sample_value(
                parsed, "repro_window_task_latency_s_p95_s") > 0.0
            assert sample_value(
                parsed, "repro_daemon_jobs_completed_total") == 1.0
            assert sample_value(parsed, "repro_client_requests_total",
                                client="alpha") == 1.0
            assert sample_value(parsed, "repro_client_batches_total",
                                client="alpha") == 1.0
            assert sample_value(parsed, "repro_client_answers_total",
                                client="alpha") >= 1.0
            assert sample_value(
                parsed, "repro_client_batch_latency_s_count",
                client="alpha") == 1.0
            # threshold 0: every delivered span is a slow span.
            assert dump["spans"] and dump["slow"]
            assert dump["spans"][0]["outcome"] == "ok"
            # stats carries the same attribution + window + flight.
            assert stats["clients"]["alpha"]["requests"] == 1
            assert stats["flight"]["recorded"] >= 1
            assert "tasks{outcome=ok}" in stats["window"]["counters"]
            # The HTTP listener serves the identical document shape.
            status, body = _http_get(
                f"http://{daemon.metrics_addr}/metrics")
            assert status == 200
            assert parse_prometheus(body)["samples"]
            status, _ = _http_get(
                f"http://{daemon.metrics_addr}/nope")
            assert status == 404
        finally:
            daemon.stop()

    def test_healthz_flips_on_drain(self, tmp_path):
        gate = threading.Event()
        service = gated_service(2, gate)
        config = DaemonConfig(
            addr=f"unix:{tmp_path}/drain-test.sock",
            service=ServiceConfig(workers=2, executor="thread"),
            metrics_port=0, drain_timeout_s=30.0)
        daemon = AnalysisDaemon(config, service=service)
        daemon.start_background()
        client = DaemonClient(config.addr)
        try:
            client.submit([AnalysisRequest("g", make_source())])
            status, body = _http_get(
                f"http://{daemon.metrics_addr}/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            client.shutdown()
            status, body = _http_get(
                f"http://{daemon.metrics_addr}/healthz")
            assert status == 503
            assert json.loads(body)["status"] == "draining"
        finally:
            gate.set()
            client.close()
            daemon._thread.join(timeout=30)
            assert not daemon._thread.is_alive()

    def test_drain_dumps_flight_and_crash_auto_dumps(self, tmp_path):
        gate = threading.Event()
        gate.set()
        crashed = []
        service = gated_service(2, gate, crash_on="crashy",
                                crashed=crashed)
        dump_path = tmp_path / "flight.json"
        config = DaemonConfig(
            addr=f"unix:{tmp_path}/crash-test.sock",
            service=ServiceConfig(workers=2, executor="thread"),
            flight_dump_path=str(dump_path))
        daemon = AnalysisDaemon(config, service=service)
        daemon.start_background()
        try:
            with DaemonClient(config.addr, tag="crasher") as client:
                client.run_batch(
                    [AnalysisRequest("crashy", make_source())])
            assert crashed, "crash injection never fired"
            # The worker death auto-dumped mid-flight...
            doc = json.loads(dump_path.read_text())
            assert doc["reason"] == "failure"
            assert any(s["outcome"] == "failure" for s in doc["spans"])
        finally:
            daemon.stop()
        # ...and the drain rewrote the final state on exit.
        doc = json.loads(dump_path.read_text())
        assert doc["reason"] == "drain"

    def test_cli_top_and_stats_flight(self, tmp_path, capsys):
        daemon, addr = _live_daemon(tmp_path, slow_threshold_s=0.0)
        try:
            with DaemonClient(addr, tag="cli") as client:
                client.run_batch(
                    [AnalysisRequest("t", make_source())])
            assert cli_main(["top", "--once", "--daemon", addr]) == 0
            frame = capsys.readouterr().out
            assert "repro top" in frame and "[serving]" in frame
            assert "cli" in frame          # client attribution row
            assert "task latency" in frame  # windowed percentiles
            assert cli_main(["stats", "--daemon", addr,
                             "--flight"]) == 0
            dump = json.loads(capsys.readouterr().out)
            assert dump["spans"]
            assert cli_main(["stats", "--daemon", addr,
                             "--metrics"]) == 0
            parsed = parse_prometheus(capsys.readouterr().out)
            assert sample_value(parsed, "repro_client_requests_total",
                                client="cli") == 1.0
        finally:
            daemon.stop()

    def test_shed_attribution(self, tmp_path):
        gate = threading.Event()
        service = gated_service(1, gate)
        config = DaemonConfig(
            addr=f"unix:{tmp_path}/shed-test.sock",
            service=ServiceConfig(workers=1, executor="thread"),
            max_client_jobs=1)
        daemon = AnalysisDaemon(config, service=service)
        daemon.start_background()
        try:
            with DaemonClient(config.addr, tag="greedy") as client:
                client.submit([AnalysisRequest("a", make_source())])
                from repro.daemon import DaemonError
                with pytest.raises(DaemonError) as excinfo:
                    client.submit(
                        [AnalysisRequest("b", make_source())])
                assert excinfo.value.busy
                gate.set()
                stats = client.stats()
                parsed = parse_prometheus(client.metrics())
            assert stats["clients"]["greedy"]["sheds"] == 1
            assert sample_value(parsed, "repro_client_sheds_total",
                                client="greedy") == 1.0
            assert "sheds{kind=client_window}" in \
                stats["window"]["counters"]
        finally:
            gate.set()
            daemon.stop()


class TestRenderTop:
    def test_render_top_is_defensive(self):
        # A bare v1-style stats reply still renders.
        frame = render_top({"daemon": {"addr": "unix:x", "pid": 1},
                            "telemetry": {}})
        assert "repro top" in frame
        assert "DRAINING" not in frame

    def test_render_top_draining_flag(self):
        frame = render_top({"daemon": {"draining": True},
                            "telemetry": {}})
        assert "[DRAINING]" in frame
