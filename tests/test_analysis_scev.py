"""Tests for scalar evolution: add-recurrences and pointer offsets."""

import pytest

from repro.analysis import (
    AnalysisContext,
    SCEVAddRec,
    SCEVConstant,
    SCEVUnknown,
    affine_parts,
    scev_add,
    scev_mul,
    scev_neg,
)
from repro.ir import parse_module


SOURCE = """
global @arr : [100 x i32] = zeroinit
global @mat : [10 x [10 x f64]] = zeroinit

func @f(i64 %base) -> i32 {
entry:
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i.next, %loop]
  %j = phi i64 [5, %entry], [%j.next, %loop]
  %k = phi i64 [%base, %entry], [%k.next, %loop]
  %i2 = mul i64 %i, 2
  %i3 = add i64 %i2, 7
  %p = gep [100 x i32]* @arr, i64 0, i64 %i
  %v = load i32* %p
  %q = gep [100 x i32]* @arr, i64 0, i64 %i3
  %w = load i32* %q
  %i.next = add i64 %i, 1
  %j.next = add i64 %j, 3
  %k.next = sub i64 %k, 2
  %c = icmp slt i64 %i.next, 50
  condbr i1 %c, %loop, %exit
exit:
  ret i32 %v
}
"""


@pytest.fixture
def setup():
    m = parse_module(SOURCE)
    fn = m.get_function("f")
    ctx = AnalysisContext(m)
    scev = ctx.scalar_evolution(fn)
    loop = ctx.loop_info(fn).loops[0]
    values = {i.name: i for i in fn.instructions() if i.name}
    return m, fn, scev, loop, values


class TestAlgebra:
    def test_constant_folding(self):
        assert scev_add(SCEVConstant(2), SCEVConstant(3)) == SCEVConstant(5)
        assert scev_mul(SCEVConstant(2), SCEVConstant(3)) == SCEVConstant(6)
        assert scev_neg(SCEVConstant(4)) == SCEVConstant(-4)

    def test_identities(self):
        u = SCEVUnknown(None)
        assert scev_add(SCEVConstant(0), u) is u
        assert scev_mul(SCEVConstant(1), u) is u
        assert scev_mul(SCEVConstant(0), u) == SCEVConstant(0)


class TestRecurrences:
    def test_basic_iv(self, setup):
        _, _, scev, loop, values = setup
        rec = scev.analyze(values["i"], loop)
        assert isinstance(rec, SCEVAddRec)
        assert affine_parts(rec, loop) == (0, 1)

    def test_stride_and_start(self, setup):
        _, _, scev, loop, values = setup
        rec = scev.analyze(values["j"], loop)
        assert affine_parts(rec, loop) == (5, 3)

    def test_negative_stride_via_sub(self, setup):
        _, _, scev, loop, values = setup
        rec = scev.analyze(values["k"], loop)
        assert isinstance(rec, SCEVAddRec)
        assert rec.step.constant_value() == -2
        # Start is symbolic (%base), so affine_parts refuses.
        assert affine_parts(rec, loop) is None

    def test_derived_affine(self, setup):
        _, _, scev, loop, values = setup
        rec = scev.analyze(values["i3"], loop)  # 2*i + 7
        assert affine_parts(rec, loop) == (7, 2)

    def test_invariant_value(self, setup):
        _, fn, scev, loop, _ = setup
        base = fn.args[0]
        result = scev.analyze(base, loop)
        assert isinstance(result, SCEVUnknown)
        assert affine_parts(result, loop) is None


class TestPointerOffsets:
    def test_array_gep(self, setup):
        m, _, scev, loop, values = setup
        base, offset = scev.pointer_offset(values["p"], loop)
        assert base is m.get_global("arr")
        assert affine_parts(offset, loop) == (0, 4)  # i32 stride

    def test_scaled_gep(self, setup):
        m, _, scev, loop, values = setup
        base, offset = scev.pointer_offset(values["q"], loop)
        assert base is m.get_global("arr")
        assert affine_parts(offset, loop) == (28, 8)  # (2i+7)*4

    def test_constant_only(self):
        m = parse_module("""
global @g : [4 x i64] = zeroinit
func @f() -> i64 {
entry:
  %p = gep [4 x i64]* @g, i64 0, i64 2
  %v = load i64* %p
  ret i64 %v
}
""")
        ctx = AnalysisContext(m)
        fn = m.get_function("f")
        scev = ctx.scalar_evolution(fn)
        p = next(i for i in fn.instructions() if i.name == "p")
        base, offset = scev.pointer_offset(p, None)
        assert base is m.get_global("g")
        assert offset.constant_value() == 16
