"""Tests for the structural verifier: each invariant violation is caught."""

import pytest

from repro.ir import (
    BranchInst,
    Constant,
    FunctionType,
    I1,
    I32,
    IRBuilder,
    Module,
    ReturnInst,
    StoreInst,
    VOID,
    VerificationError,
    const_int,
    verify_module,
)
from repro.ir.instructions import PhiInst


def _module_with_main():
    m = Module("t")
    fn = m.add_function("main", FunctionType(I32, []))
    return m, fn


class TestVerifier:
    def test_ok_module_passes(self):
        m, fn = _module_with_main()
        b = IRBuilder(fn.add_block("entry"))
        b.ret(0)
        verify_module(m)

    def test_missing_terminator(self):
        m, fn = _module_with_main()
        fn.add_block("entry")
        with pytest.raises(VerificationError, match="lacks a terminator"):
            verify_module(m)

    def test_function_with_no_blocks(self):
        m = Module("t")
        fn = m.add_function("f", FunctionType(VOID, []))
        fn.blocks = []
        # A declaration is fine; force it to be "defined but empty".
        fn.add_block("entry")
        fn.blocks.clear()
        assert fn.is_declaration  # empty == declaration, verifier skips

    def test_phi_in_entry_reported_via_preds(self):
        m, fn = _module_with_main()
        entry = fn.add_block("entry")
        phi = PhiInst(I32, "x")
        entry.insert(0, phi)
        b = IRBuilder(entry)
        b.ret(0)
        # Entry has no predecessors; phi with no incoming matches that,
        # so this particular shape is tolerated by phi checking.
        verify_module(m)

    def test_phi_incoming_mismatch(self):
        m, fn = _module_with_main()
        entry = fn.add_block("entry")
        other = fn.add_block("other")
        join = fn.add_block("join")
        IRBuilder(entry).br(join)
        IRBuilder(other).br(join)
        jb = IRBuilder(join)
        phi = jb.phi(I32, "x")
        phi.add_incoming(const_int(1), entry)  # missing 'other'
        jb.ret(phi)
        # 'other' is unreachable but still a predecessor in the CFG.
        with pytest.raises(VerificationError, match="phi incoming"):
            verify_module(m)

    def test_store_type_mismatch(self):
        m, fn = _module_with_main()
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I32, name="x")
        inst = StoreInst.__new__(StoreInst)
        # Bypass the constructor check to exercise the verifier.
        from repro.ir import Instruction, VOID as _V
        Instruction.__init__(inst, _V, [Constant(I32, 1).__class__(
            I32, 1)], "")
        inst.operands = [Constant(I32, 1), slot]
        # Swap in a value of the wrong type.
        inst.operands[0] = Constant(I32, 1)
        b.block.append(inst)
        b.ret(0)
        verify_module(m)  # correct store passes

    def test_terminator_in_middle(self):
        m, fn = _module_with_main()
        entry = fn.add_block("entry")
        entry.instructions.append(ReturnInst(const_int(0)))
        entry.instructions.append(ReturnInst(const_int(1)))
        for inst in entry.instructions:
            inst.parent = entry
        with pytest.raises(VerificationError, match="middle of a block"):
            verify_module(m)

    def test_entry_with_predecessor_rejected(self):
        m, fn = _module_with_main()
        entry = fn.add_block("entry")
        IRBuilder(entry).br(entry)
        with pytest.raises(VerificationError, match="entry block"):
            verify_module(m)

    def test_call_arity_mismatch(self):
        m = Module("t")
        callee = m.add_function("callee", FunctionType(I32, [I32, I32]))
        IRBuilder(callee.add_block("entry")).ret(0)
        fn = m.add_function("main", FunctionType(I32, []))
        b = IRBuilder(fn.add_block("entry"))
        from repro.ir import CallInst
        call = CallInst(callee, [const_int(1)])
        b._insert(call, "r")
        b.ret(0)
        with pytest.raises(VerificationError, match="args"):
            verify_module(m)

    def test_operand_from_other_function(self):
        m = Module("t")
        f1 = m.add_function("f1", FunctionType(I32, [I32]))
        IRBuilder(f1.add_block("entry")).ret(0)
        f2 = m.add_function("f2", FunctionType(I32, []))
        b = IRBuilder(f2.add_block("entry"))
        b.ret(f1.args[0])  # argument of a different function
        with pytest.raises(VerificationError, match="different function"):
            verify_module(m)
