"""Tests for the IR type system."""

import pytest

from repro.ir import (
    ArrayType,
    F32,
    F64,
    FloatType,
    FunctionType,
    I1,
    I32,
    I64,
    I8,
    IntType,
    POINTER_SIZE,
    PointerType,
    StructType,
    VOID,
    pointer_to,
)


class TestIntType:
    def test_sizes(self):
        assert I1.size == 1
        assert I8.size == 1
        assert I32.size == 4
        assert I64.size == 8

    def test_equality_is_structural(self):
        assert IntType(32) == I32
        assert IntType(32) != IntType(64)
        assert hash(IntType(32)) == hash(I32)

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            IntType(128)

    def test_repr(self):
        assert repr(I32) == "i32"


class TestFloatType:
    def test_sizes(self):
        assert F32.size == 4
        assert F64.size == 8

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            FloatType(16)

    def test_equality(self):
        assert FloatType(64) == F64
        assert F32 != F64


class TestPointerType:
    def test_size_is_machine_word(self):
        assert pointer_to(I32).size == POINTER_SIZE
        assert pointer_to(ArrayType(F64, 100)).size == POINTER_SIZE

    def test_structural_equality(self):
        assert pointer_to(I32) == PointerType(I32)
        assert pointer_to(I32) != pointer_to(I64)

    def test_nested(self):
        pp = pointer_to(pointer_to(I8))
        assert pp.pointee == pointer_to(I8)

    def test_classification(self):
        assert pointer_to(I32).is_pointer
        assert not I32.is_pointer
        assert I32.is_integer
        assert F64.is_float
        assert VOID.is_void


class TestArrayType:
    def test_size(self):
        assert ArrayType(I32, 10).size == 40
        assert ArrayType(ArrayType(I8, 4), 3).size == 12

    def test_zero_length(self):
        assert ArrayType(I64, 0).size == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ArrayType(I32, -1)

    def test_equality(self):
        assert ArrayType(I32, 4) == ArrayType(I32, 4)
        assert ArrayType(I32, 4) != ArrayType(I32, 5)
        assert ArrayType(I32, 4) != ArrayType(I64, 4)


class TestStructType:
    def test_field_offsets_no_padding(self):
        st = StructType("pair", [I32, F64, I8])
        assert st.field_offset(0) == 0
        assert st.field_offset(1) == 4
        assert st.field_offset(2) == 12
        assert st.size == 13

    def test_offset_out_of_range(self):
        st = StructType("s", [I32])
        with pytest.raises(IndexError):
            st.field_offset(1)

    def test_named_equality(self):
        a = StructType("node", [I32])
        b = StructType("node", [I64])  # same name, different body
        assert a == b
        assert a != StructType("other", [I32])

    def test_opaque_then_set_body(self):
        st = StructType("fwd")
        assert st.is_opaque
        st.set_body([I32, pointer_to(st)])
        assert not st.is_opaque
        assert st.size == 4 + POINTER_SIZE

    def test_set_body_twice_rejected(self):
        st = StructType("once", [I32])
        with pytest.raises(ValueError):
            st.set_body([I64])

    def test_recursive_struct_size(self):
        node = StructType("list")
        node.set_body([I64, pointer_to(node)])
        assert node.size == 16


class TestFunctionType:
    def test_equality(self):
        a = FunctionType(I32, [I64, F64])
        b = FunctionType(I32, [I64, F64])
        assert a == b
        assert a != FunctionType(I32, [I64])
        assert a != FunctionType(VOID, [I64, F64])

    def test_vararg_distinct(self):
        assert FunctionType(I32, [], vararg=True) != FunctionType(I32, [])

    def test_has_no_size(self):
        with pytest.raises(TypeError):
            FunctionType(VOID, []).size
