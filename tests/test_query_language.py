"""Tests for the query language: assertions algebra, responses, joins."""

import pytest

from repro.query import (
    AliasQuery,
    AliasResult,
    JoinPolicy,
    MemoryLocation,
    ModRefResult,
    OptionSet,
    PROHIBITIVE_COST,
    QueryResponse,
    SpeculativeAssertion,
    TemporalRelation,
    join,
    option_consistent,
    option_cost,
    precision,
)


def A(mid, cost=1.0, conflicts=()):
    return SpeculativeAssertion(module_id=mid, cost=cost,
                                conflict_points=frozenset(conflicts))


class TestTemporalRelation:
    def test_cross_iteration(self):
        assert TemporalRelation.BEFORE.is_cross_iteration
        assert TemporalRelation.AFTER.is_cross_iteration
        assert not TemporalRelation.SAME.is_cross_iteration

    def test_flip(self):
        assert TemporalRelation.BEFORE.flipped() is TemporalRelation.AFTER
        assert TemporalRelation.AFTER.flipped() is TemporalRelation.BEFORE
        assert TemporalRelation.SAME.flipped() is TemporalRelation.SAME


class TestPrecision:
    def test_alias_ordering(self):
        assert precision(AliasResult.NO_ALIAS) == \
            precision(AliasResult.MUST_ALIAS)
        assert precision(AliasResult.NO_ALIAS) > \
            precision(AliasResult.SUB_ALIAS)
        assert precision(AliasResult.SUB_ALIAS) > \
            precision(AliasResult.PARTIAL_ALIAS)
        assert precision(AliasResult.PARTIAL_ALIAS) > \
            precision(AliasResult.MAY_ALIAS)

    def test_modref_ordering(self):
        assert precision(ModRefResult.NO_MOD_REF) > \
            precision(ModRefResult.MOD)
        assert precision(ModRefResult.MOD) == precision(ModRefResult.REF)
        assert precision(ModRefResult.REF) > \
            precision(ModRefResult.MOD_REF)


class TestOptionSet:
    def test_free_is_empty_option(self):
        free = OptionSet.free()
        assert free.is_free
        assert not free.is_empty
        assert free.cheapest_cost() == 0.0

    def test_union_is_alternatives(self):
        s1 = OptionSet.single(A("a", 1.0))
        s2 = OptionSet.single(A("b", 2.0))
        u = s1 | s2
        assert len(u.options) == 2
        assert u.cheapest_cost() == 1.0

    def test_cross_combines_requirements(self):
        s1 = OptionSet.single(A("a", 1.0))
        s2 = OptionSet.single(A("b", 2.0))
        x = s1 * s2
        assert len(x.options) == 1
        assert x.cheapest_cost() == 3.0

    def test_cross_with_free_is_identity(self):
        s = OptionSet.single(A("a", 1.0))
        assert (s * OptionSet.free()).options == s.options
        assert (OptionSet.free() * s).options == s.options

    def test_cross_drops_conflicting_combinations(self):
        a = A("read-only", 1.0, conflicts=("site1",))
        b = A("short-lived", 1.0, conflicts=("site1",))
        x = OptionSet.single(a) * OptionSet.single(b)
        assert x.is_empty

    def test_cross_keeps_compatible_alternatives(self):
        a = A("read-only", 1.0, conflicts=("site1",))
        b = A("short-lived", 1.0, conflicts=("site1",))
        c = A("residue", 5.0)
        left = OptionSet.single(a) | OptionSet.single(c)
        right = OptionSet.single(b)
        x = left * right
        # (a,b) conflicts; (c,b) survives.
        assert len(x.options) == 1
        assert x.cheapest_cost() == 6.0

    def test_keep_cheapest(self):
        s = OptionSet.single(A("a", 5.0)) | OptionSet.single(A("b", 2.0))
        kept = s.keep_cheapest()
        assert len(kept.options) == 1
        assert kept.cheapest_cost() == 2.0

    def test_without_prohibitive(self):
        s = OptionSet.single(A("points-to", PROHIBITIVE_COST)) | \
            OptionSet.single(A("cheap", 1.0))
        filtered = s.without_prohibitive()
        assert len(filtered.options) == 1
        assert filtered.cheapest_cost() == 1.0

    def test_all_prohibitive_becomes_empty(self):
        s = OptionSet.single(A("points-to", PROHIBITIVE_COST))
        assert s.without_prohibitive().is_empty

    def test_option_cost_and_consistency(self):
        opt = frozenset({A("a", 1.0), A("b", 2.0)})
        assert option_cost(opt) == 3.0
        assert option_consistent(opt)
        bad = frozenset({A("a", 1.0, ("p",)), A("b", 1.0, ("p",))})
        assert not option_consistent(bad)

    def test_same_assertion_does_not_self_conflict(self):
        a = A("read-only", 1.0, conflicts=("site",))
        assert not a.conflicts_with(a)

    def test_modules_involved(self):
        s = OptionSet.single(A("x"), A("y")) | OptionSet.single(A("z"))
        assert s.modules_involved() == frozenset({"x", "y", "z"})


class TestJoin:
    def _free(self, result):
        return QueryResponse.free(result)

    def _spec(self, result, *assertions):
        return QueryResponse(result, OptionSet.single(*assertions))

    def test_precision_wins(self):
        r = join(JoinPolicy.CHEAPEST,
                 self._free(AliasResult.MAY_ALIAS),
                 self._free(AliasResult.NO_ALIAS))
        assert r.result is AliasResult.NO_ALIAS

    def test_free_beats_speculative_on_equal_result(self):
        free = self._free(ModRefResult.NO_MOD_REF)
        spec = self._spec(ModRefResult.NO_MOD_REF, A("a", 10.0))
        r = join(JoinPolicy.CHEAPEST, spec, free)
        assert r.options.is_free

    def test_all_policy_keeps_both_options(self):
        r1 = self._spec(ModRefResult.NO_MOD_REF, A("a", 1.0))
        r2 = self._spec(ModRefResult.NO_MOD_REF, A("b", 2.0))
        r = join(JoinPolicy.ALL, r1, r2)
        assert len(r.options.options) == 2

    def test_cheapest_policy_keeps_one(self):
        r1 = self._spec(ModRefResult.NO_MOD_REF, A("a", 3.0))
        r2 = self._spec(ModRefResult.NO_MOD_REF, A("b", 2.0))
        r = join(JoinPolicy.CHEAPEST, r1, r2)
        assert len(r.options.options) == 1
        assert r.cost() == 2.0

    def test_mod_ref_composition(self):
        """Mod ⋈ Ref = NoModRef with crossed assertions (Algorithm 2)."""
        r1 = self._spec(ModRefResult.MOD, A("a", 1.0))
        r2 = self._spec(ModRefResult.REF, A("b", 2.0))
        r = join(JoinPolicy.CHEAPEST, r1, r2)
        assert r.result is ModRefResult.NO_MOD_REF
        assert r.cost() == 3.0

    def test_mod_ref_with_conflicting_assertions(self):
        r1 = self._spec(ModRefResult.MOD, A("a", 1.0, ("p",)))
        r2 = self._spec(ModRefResult.REF, A("b", 5.0, ("p",)))
        r = join(JoinPolicy.CHEAPEST, r1, r2)
        # Cannot compose; the cheaper side is kept.
        assert r.result is ModRefResult.MOD
        assert r.cost() == 1.0

    def test_conflicting_results_prefer_free(self):
        r1 = self._spec(AliasResult.NO_ALIAS, A("spec", 1.0))
        r2 = self._free(AliasResult.MUST_ALIAS)
        r = join(JoinPolicy.CHEAPEST, r1, r2)
        assert r.result is AliasResult.MUST_ALIAS

    def test_unrealizable_side_ignored(self):
        dead = QueryResponse(ModRefResult.NO_MOD_REF, OptionSet())
        live = self._free(ModRefResult.MOD)
        assert join(JoinPolicy.CHEAPEST, dead, live).result \
            is ModRefResult.MOD
        assert join(JoinPolicy.CHEAPEST, live, dead).result \
            is ModRefResult.MOD


class TestQueryKeys:
    def test_alias_key_stable_and_desired_sensitive(self):
        from repro.ir import GlobalVariable, I32
        g1 = GlobalVariable("a", I32)
        g2 = GlobalVariable("b", I32)
        q = AliasQuery(MemoryLocation(g1, 4), TemporalRelation.SAME,
                       MemoryLocation(g2, 4), None)
        assert q.key() == q.key()
        assert q.key() != q.with_desired(AliasResult.NO_ALIAS).key()

    def test_flipped(self):
        from repro.ir import GlobalVariable, I32
        g1 = GlobalVariable("a", I32)
        g2 = GlobalVariable("b", I32)
        q = AliasQuery(MemoryLocation(g1, 4), TemporalRelation.BEFORE,
                       MemoryLocation(g2, 8), None)
        f = q.flipped()
        assert f.loc1.pointer is g2
        assert f.relation is TemporalRelation.AFTER
