"""Tests for the serving layer (repro.service).

Covers the wire schema, version-keyed persistent cache, batch
scheduler (dedup, sharding, backpressure, degradation), the service
facade, and the two contract properties the subsystem exists for:

- batched answers are bitwise-identical to the sequential
  ``coordinator.handle`` path (hypothesis property test), and
- a warm persistent cache reproduces identical responses with zero
  module evaluations.
"""

import json
import sqlite3
import sys
import tempfile
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import AnalysisContext
from repro.clients import PDGClient, hot_loops, weighted_no_dep_answers
from repro.core import OrchestratorConfig
from repro.ir import parse_module, verify_module
from repro.profiling import run_profilers
from repro.service import (
    AnalysisRequest,
    BatchScheduler,
    DependenceService,
    ResultCache,
    ServiceConfig,
    ShardResult,
    ShardTask,
    STATUS_CACHED,
    STATUS_COMPUTED,
    STATUS_FALLBACK,
    build_system,
    fallback_answer,
    loop_answer_from_dict,
    loop_answer_to_dict,
    request_for_workload,
    reset_prepared_cache,
    run_shard,
    summarize_pdg,
    system_module_roster,
)
from repro.service.telemetry import LatencyHistogram


@pytest.fixture(autouse=True)
def _fresh_prepared_cache():
    # The worker-resident prepared-module cache is process-global; with
    # the inline/thread executors that process is the test process, so
    # isolate each test from modules prepared (and orchestrator memos
    # warmed) by its predecessors.
    reset_prepared_cache()
    yield
    reset_prepared_cache()


def make_source(iters: int = 60, rare_store: bool = True,
                second_cell: bool = False) -> str:
    """A small hot-loop program, parameterized for the property test."""
    rare = ("  store i32 1, i32* @hits\n" if rare_store else "")
    extra = ("  %b = load i32* @bcell\n  store i32 %b, i32* @bcell\n"
             if second_cell else "")
    return f"""
global @flag : i32 = 0
global @acc : i32 = 0
global @hits : i32 = 0
global @bcell : i32 = 0

func @main() -> i32 {{
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %latch]
  %f = load i32* @flag
  %c = icmp ne i32 %f, 0
  condbr i1 %c, %rare, %common
rare:
{rare}  br %join
common:
  br %join
join:
  %a = load i32* @acc
  %a2 = add i32 %a, %i
  store i32 %a2, i32* @acc
{extra}  br %latch
latch:
  %i2 = add i32 %i, 1
  %lc = icmp slt i32 %i2, {iters}
  condbr i1 %lc, %loop, %exit
exit:
  %r = load i32* @acc
  ret i32 %r
}}
"""


def sequential_answers(request: AnalysisRequest):
    """The reference path: one in-process system, coordinator.handle
    per query, flattened through the same summarizer the workers use."""
    module = parse_module(request.source, name=request.name)
    verify_module(module)
    context = AnalysisContext(module)
    profiles = run_profilers(module, context, entry=request.entry)
    system = build_system(request.system, module, context, profiles,
                          request.config)
    client = PDGClient(system)
    return [summarize_pdg(request.name, request.system,
                          client.analyze_loop(h.loop), h.time_fraction, 0.0)
            for h in hot_loops(profiles)]


def identities(answers):
    return [a.identity() for a in answers]


# -- wire schema -------------------------------------------------------------

class TestAnswers:
    def test_json_round_trip(self):
        request = AnalysisRequest("t", make_source(), system="scaf")
        [answer] = sequential_answers(request)
        doc = loop_answer_to_dict(answer)
        assert doc["answers"], "expected per-pair answers"
        restored = loop_answer_from_dict(doc)
        assert restored == answer

    def test_labels_are_stable_across_parses(self):
        request = AnalysisRequest("t", make_source(), system="caf")
        first = sequential_answers(request)
        second = sequential_answers(request)
        assert identities(first) == identities(second)

    def test_fallback_is_conservative(self):
        a = fallback_answer("w", "scaf", "@main:%loop")
        assert a.status == STATUS_FALLBACK
        assert a.no_dep_percent == 0.0
        assert a.answers == ()


# -- versioning --------------------------------------------------------------

class TestVersionKey:
    def test_key_ingredients(self):
        base = AnalysisRequest("t", make_source(), system="scaf")
        assert base.version_key() == \
            AnalysisRequest("t", make_source(), system="scaf").version_key()
        assert base.version_key() != AnalysisRequest(
            "t", make_source(iters=80), system="scaf").version_key()
        assert base.version_key() != AnalysisRequest(
            "t", make_source(), system="caf").version_key()
        assert base.version_key() != AnalysisRequest(
            "t", make_source(), system="scaf",
            config=OrchestratorConfig(join_policy="all")).version_key()
        # Display name and loop subset do NOT change the key: they
        # share one computation.
        assert base.version_key() == AnalysisRequest(
            "other-name", make_source(), system="scaf").version_key()

    def test_rosters(self):
        assert len(system_module_roster("caf")) == 13
        assert len(system_module_roster("scaf")) == 19
        assert len(system_module_roster("memory-speculation")) == 14
        with pytest.raises(ValueError):
            system_module_roster("nope")

    def test_answer_irrelevant_config_fields_share_key(self):
        """Memo-cache knobs cannot change an answer, so flipping them
        must not bust the persistent cache; answer-relevant policy
        fields still must."""
        base = AnalysisRequest("t", make_source(), system="scaf")
        for config in (OrchestratorConfig(use_cache=False),
                       OrchestratorConfig(max_cache_entries=7),
                       OrchestratorConfig(track_contributors=False)):
            twin = AnalysisRequest("t", make_source(), system="scaf",
                                   config=config)
            assert twin.version_key() == base.version_key()
            assert twin.lineage_key() == base.lineage_key()
        assert AnalysisRequest(
            "t", make_source(), system="scaf",
            config=OrchestratorConfig(join_policy="all")
        ).version_key() != base.version_key()

    def test_lineage_key_ignores_source_only(self):
        base = AnalysisRequest("t", make_source(), system="scaf")
        edited = AnalysisRequest("t", make_source(iters=80), system="scaf")
        assert base.version_key() != edited.version_key()
        assert base.lineage_key() == edited.lineage_key()
        assert base.lineage_key() != AnalysisRequest(
            "t", make_source(), system="caf").lineage_key()


# -- persistent cache --------------------------------------------------------

class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        request = AnalysisRequest("t", make_source(), system="caf")
        key = request.version_key()
        assert cache.lookup(key) is None
        answers = sequential_answers(request)
        cache.store(key, workload="t", system="caf", entry="main",
                    modules=system_module_roster("caf"),
                    profile_digest="d", hot_loops=[a.loop for a in answers],
                    answers=answers)
        cached = cache.lookup(key)
        assert cached is not None
        assert all(a.status == STATUS_CACHED for a in cached)
        assert identities(cached) == identities(answers)
        cache.close()

    def test_partial_roster_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        request = AnalysisRequest("t", make_source(), system="caf")
        key = request.version_key()
        answers = sequential_answers(request)
        cache.store(key, workload="t", system="caf", entry="main",
                    modules=(), profile_digest="d",
                    hot_loops=[a.loop for a in answers] + ["@main:%ghost"],
                    answers=answers)
        assert cache.lookup(key) is None               # roster incomplete
        assert cache.lookup(key, [answers[0].loop]) is not None
        cache.close()

    def test_invalidate_and_prune(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        request = AnalysisRequest("t", make_source(), system="caf")
        answers = sequential_answers(request)
        for key in ("k1", "k2", "k3"):
            cache.store(key, workload="t", system="caf", entry="main",
                        modules=(), profile_digest="d",
                        hot_loops=[a.loop for a in answers],
                        answers=answers)
        cache.invalidate("k1")
        assert cache.lookup("k1") is None
        assert cache.prune(["k2"]) == 1
        assert cache.keys() == ["k2"]
        cache.close()

    def test_lookup_explicit_subset_of_partial_key(self, tmp_path):
        """An explicit loop subset hits iff *every named loop* has a
        row — a partially-populated key serves the loops it has and
        misses on any subset that reaches into the holes."""
        cache = ResultCache(str(tmp_path))
        request = AnalysisRequest("t", make_source(), system="caf")
        key = request.version_key()
        answers = sequential_answers(request)
        stored = answers[0].loop
        cache.store(key, workload="t", system="caf", entry="main",
                    modules=(), profile_digest="d",
                    hot_loops=[stored, "@main:%ghost"],
                    answers=answers)
        assert cache.lookup(key, [stored]) is not None
        assert cache.lookup(key, [stored, "@main:%ghost"]) is None
        assert cache.lookup(key, ["@main:%ghost"]) is None
        assert cache.lookup(key) is None            # full roster short
        cache.close()

    def test_prune_empty_keep_drops_all_rows(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        request = AnalysisRequest("t", make_source(), system="caf")
        answers = sequential_answers(request)
        for key in ("k1", "k2", "k3"):
            cache.store(key, workload="t", system="caf", entry="main",
                        modules=(), profile_digest="d",
                        hot_loops=[a.loop for a in answers],
                        answers=answers)
        assert cache.prune([]) == 3
        assert cache.keys() == []
        # The answers table must be emptied too, not just meta.
        left = cache._conn.execute("SELECT COUNT(*) FROM answers")
        assert left.fetchone()[0] == 0
        cache.close()

    def test_prune_ignores_unknown_keep_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        request = AnalysisRequest("t", make_source(), system="caf")
        answers = sequential_answers(request)
        for key in ("k1", "k2"):
            cache.store(key, workload="t", system="caf", entry="main",
                        modules=(), profile_digest="d",
                        hot_loops=[a.loop for a in answers],
                        answers=answers)
        assert cache.prune(["k2", "k2", "never-stored"]) == 1
        assert cache.keys() == ["k2"]
        assert cache.lookup("k2") is not None
        cache.close()

    def test_prune_handles_keep_lists_past_sqlite_param_limit(
            self, tmp_path):
        """sqlite binds at most 999 host parameters per statement; a
        keep list larger than that must still prune correctly (the
        keys are staged through a temp table, not an IN (...) list)."""
        cache = ResultCache(str(tmp_path))
        request = AnalysisRequest("t", make_source(), system="caf")
        answers = sequential_answers(request)
        for key in ("k1", "k2", "k3"):
            cache.store(key, workload="t", system="caf", entry="main",
                        modules=(), profile_digest="d",
                        hot_loops=[a.loop for a in answers],
                        answers=answers)
        keep = [f"live-{i:04d}" for i in range(1200)] + ["k1", "k3"]
        assert cache.prune(keep) == 1            # only k2 goes
        assert cache.keys() == ["k1", "k3"]
        assert cache.lookup("k1") is not None
        cache.close()

    def test_v1_schema_migrates_in_place(self, tmp_path):
        """Opening a pre-incremental (v1) database adds the new columns
        without touching existing rows; legacy rows keep serving exact
        lookups and never match an incremental probe."""
        request = AnalysisRequest("t", make_source(), system="caf")
        key = request.version_key()
        [answer] = sequential_answers(request)
        db = str(tmp_path / ResultCache.FILENAME)
        conn = sqlite3.connect(db)
        conn.executescript("""
            CREATE TABLE meta (
                version_key TEXT PRIMARY KEY, workload TEXT NOT NULL,
                system TEXT NOT NULL, entry TEXT NOT NULL,
                modules TEXT NOT NULL, profile_digest TEXT NOT NULL,
                hot_loops TEXT NOT NULL, created_at REAL NOT NULL);
            CREATE TABLE answers (
                version_key TEXT NOT NULL, loop_name TEXT NOT NULL,
                payload TEXT NOT NULL,
                PRIMARY KEY (version_key, loop_name));
        """)
        conn.execute("INSERT INTO meta VALUES (?,?,?,?,?,?,?,?)",
                     (key, "t", "caf", "main", "[]", "d",
                      json.dumps([answer.loop]), 1.0))
        conn.execute("INSERT INTO answers VALUES (?,?,?)",
                     (key, answer.loop,
                      json.dumps(loop_answer_to_dict(answer))))
        conn.commit()
        conn.close()

        with ResultCache(str(tmp_path)) as cache:
            cached = cache.lookup(key)
            assert cached is not None
            assert identities(cached) == identities([answer])
            assert cache.meta(key).lineage_key == ""
            assert not cache.has_lineage("")
            assert cache.lookup_footprints(
                request.lineage_key(), [answer.loop], {}, "") == {}
            # v2 writes work against the migrated tables.
            cache.store("k2", workload="t", system="caf", entry="main",
                        modules=(), profile_digest="d",
                        hot_loops=[answer.loop], answers=[answer],
                        lineage_key=request.lineage_key())
            assert cache.has_lineage(request.lineage_key())

    def test_footprint_lookup_survives_unrelated_edit(self, tmp_path):
        """The unit-level incremental contract: a stored answer is
        returned for an edited module iff every footprint function's
        fingerprint (and the header) is unchanged."""
        cache = ResultCache(str(tmp_path))
        request = AnalysisRequest("t", make_source(), system="caf")
        [answer] = sequential_answers(request)
        fingerprints = {"main": "m-hash", "helper": "h-hash"}
        cache.store(request.version_key(), workload="t", system="caf",
                    entry="main", modules=(), profile_digest="d",
                    hot_loops=[answer.loop], answers=[answer],
                    lineage_key=request.lineage_key(),
                    footprints={answer.loop: ("main",)},
                    fingerprints=fingerprints, header_fingerprint="hdr")
        lineage = request.lineage_key()

        hits = cache.lookup_footprints(
            lineage, [answer.loop],
            {"main": "m-hash", "helper": "edited"}, "hdr")
        assert set(hits) == {answer.loop}
        assert hits[answer.loop].answer.status == STATUS_CACHED
        assert hits[answer.loop].footprint == ("main",)

        # Edits inside the footprint, a changed header, or a deleted
        # footprint function all invalidate.
        assert cache.lookup_footprints(
            lineage, [answer.loop], {"main": "edited"}, "hdr") == {}
        assert cache.lookup_footprints(
            lineage, [answer.loop], {"main": "m-hash"}, "hdr2") == {}
        assert cache.lookup_footprints(
            lineage, [answer.loop], {"helper": "h-hash"}, "hdr") == {}
        cache.close()

    def test_survives_reopen(self, tmp_path):
        request = AnalysisRequest("t", make_source(), system="caf")
        key = request.version_key()
        answers = sequential_answers(request)
        with ResultCache(str(tmp_path)) as cache:
            cache.store(key, workload="t", system="caf", entry="main",
                        modules=(), profile_digest="d",
                        hot_loops=[a.loop for a in answers],
                        answers=answers)
        with ResultCache(str(tmp_path)) as cache:
            assert cache.lookup(key) is not None


# -- scheduler ---------------------------------------------------------------

def _canned_result(task: ShardTask) -> ShardResult:
    loops = task.loops or ("@main:%loop",)
    return ShardResult(
        version_key=task.request.version_key(),
        workload=task.request.name,
        system=task.request.system,
        entry=task.request.entry,
        profile_digest="d",
        hot_loops=loops,
        answers=[summary for summary in
                 (fallback_answer(task.request.name, task.request.system,
                                  name) for name in loops)],
        busy_s=0.01,
    )


class TestScheduler:
    def test_inflight_dedup(self):
        calls = []

        def runner(task):
            calls.append(task)
            return _canned_result(task)

        scheduler = BatchScheduler(workers=0, executor="inline",
                                   mode="shard", shard_runner=runner)
        a = AnalysisRequest("a", make_source(), system="caf")
        b = AnalysisRequest("b", make_source(), system="caf")  # same key
        c = AnalysisRequest("c", make_source(iters=80), system="caf")
        results = scheduler.run_batch([a, b, c])
        assert len(calls) == 2
        assert scheduler.telemetry.shards_deduplicated == 1
        assert len(results) == 3
        assert identities(results[0]) == identities(results[1])

    def test_worker_crash_degrades_not_raises(self):
        def runner(task):
            raise RuntimeError("worker died")

        scheduler = BatchScheduler(workers=1, executor="thread",
                                   mode="shard", shard_runner=runner)
        request = AnalysisRequest("a", make_source(), system="caf",
                                  loops=("@main:%loop",))
        [answers] = scheduler.run_batch([request])
        assert [a.status for a in answers] == [STATUS_FALLBACK]
        assert scheduler.telemetry.shards_failed == 1
        scheduler.close()

    def test_partial_crash_keeps_other_shards(self):
        def runner(task):
            if task.request.name == "bad":
                raise RuntimeError("worker died")
            return _canned_result(task)

        scheduler = BatchScheduler(workers=1, executor="thread",
                                   mode="shard", shard_runner=runner)
        good = AnalysisRequest("good", make_source(), system="caf")
        bad = AnalysisRequest("bad", make_source(iters=80), system="caf",
                              loops=("@main:%loop",))
        answers = scheduler.run_batch([good, bad])
        assert len(answers[0]) == 1
        assert [a.status for a in answers[1]] == [STATUS_FALLBACK]
        scheduler.close()

    def test_shard_timeout_degrades(self):
        def runner(task):
            time.sleep(0.5)
            return _canned_result(task)

        scheduler = BatchScheduler(workers=1, executor="thread",
                                   shard_timeout_s=0.05,
                                   mode="shard", shard_runner=runner)
        request = AnalysisRequest("a", make_source(), system="caf",
                                  loops=("@main:%loop",))
        [answers] = scheduler.run_batch([request])
        assert [a.status for a in answers] == [STATUS_FALLBACK]
        assert scheduler.telemetry.shards_timed_out == 1
        scheduler.close()

    def test_bounded_inflight_backpressure(self):
        def runner(task):
            return _canned_result(task)

        scheduler = BatchScheduler(workers=2, executor="inline",
                                   max_pending_shards=1,
                                   mode="shard", shard_runner=runner)
        requests = [AnalysisRequest(f"r{i}", make_source(iters=55 + i),
                                    system="caf") for i in range(5)]
        scheduler.run_batch(requests)
        assert scheduler.telemetry.shards_dispatched == 5
        assert scheduler.telemetry.max_queue_depth <= 1

    def test_init_rejects_non_positive_limits(self):
        """An explicit 0 (or negative) limit is a configuration error,
        not a request for the default."""
        for bad in (0, -1):
            with pytest.raises(ValueError, match="max_pending_shards"):
                BatchScheduler(workers=2, executor="inline",
                               max_pending_shards=bad)
            with pytest.raises(ValueError, match="max_shards_per_request"):
                BatchScheduler(workers=2, executor="inline",
                               max_shards_per_request=bad)
        # None still means "derive from workers".
        scheduler = BatchScheduler(workers=3, executor="inline")
        assert scheduler.max_pending_shards == 6
        assert scheduler.max_shards_per_request == 3

    def test_inline_executor_propagates_interrupts(self):
        """KeyboardInterrupt/SystemExit must escape; ordinary task
        errors surface through the future like a real pool."""
        from repro.service.scheduler import _InlineExecutor
        executor = _InlineExecutor()

        def interrupt():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            executor.submit(interrupt)
        with pytest.raises(SystemExit):
            executor.submit(sys.exit, 3)
        future = executor.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result()

    def test_loop_sharding_splits_known_rosters(self):
        seen = []

        def runner(task):
            seen.append(task.loops)
            return _canned_result(task)

        scheduler = BatchScheduler(workers=4, executor="inline",
                                   max_shards_per_request=4,
                                   mode="shard", shard_runner=runner)
        request = AnalysisRequest("a", make_source(), system="caf",
                                  loops=("l1", "l2", "l3", "l4"))
        scheduler.run_batch([request])
        assert len(seen) == 4
        assert sorted(l for chunk in seen for l in chunk) == \
            ["l1", "l2", "l3", "l4"]


# -- end-to-end --------------------------------------------------------------

WORKLOAD_NAMES = ("181.mcf", "462.libquantum")


class TestServiceEndToEnd:
    def test_process_pool_matches_sequential(self):
        """Real multiprocessing across 4 workers on real workloads:
        the acceptance path of `python -m repro batch --workers 4`."""
        requests = [request_for_workload(n) for n in WORKLOAD_NAMES]
        expected = [identities(sequential_answers(r)) for r in requests]
        with DependenceService(ServiceConfig(workers=4,
                                             executor="process")) as svc:
            batch = svc.run_batch(requests)
        assert [identities(a) for a in batch.answers] == expected
        assert batch.telemetry.loops_fallback == 0
        assert batch.telemetry.module_evals > 0

    def test_warm_cache_identical_with_zero_module_evals(self):
        cache_dir = tempfile.mkdtemp(prefix="scaf-cache-")
        request = request_for_workload(WORKLOAD_NAMES[0])

        with DependenceService(ServiceConfig(workers=0, executor="inline",
                                             cache_dir=cache_dir)) as svc:
            cold = svc.run_batch([request])
        assert all(a.status == STATUS_COMPUTED for a in cold.flat())

        with DependenceService(ServiceConfig(workers=0, executor="inline",
                                             cache_dir=cache_dir)) as svc:
            warm = svc.run_batch([request])
        assert identities(warm.flat()) == identities(cold.flat())
        assert all(a.status == STATUS_CACHED for a in warm.flat())
        assert warm.telemetry.module_evals == 0
        assert warm.telemetry.orchestrator_queries == 0
        assert warm.telemetry.loops_computed == 0
        assert warm.telemetry.cache_hit_rate == 1.0

    def test_weighted_no_dep_answers(self):
        request = request_for_workload(WORKLOAD_NAMES[0])
        answers = sequential_answers(request)
        value = weighted_no_dep_answers(answers)
        assert 0.0 < value <= 100.0


# -- incremental re-analysis -------------------------------------------------

#: An uncalled, self-contained helper (touches only its own alloca):
#: editing ``{step}`` changes exactly one function fingerprint and can
#: be inside no hot loop's dependence footprint.
PROBE_FUNC = """
func @__probe(i32 %seed) -> i32 {{
entry:
  %slot = alloca i32
  store i32 %seed, i32* %slot
  %cur = load i32* %slot
  %next = add i32 %cur, {step}
  ret i32 %next
}}
"""

#: Two independently-edited functions, each owning one hot loop, so a
#: single-function edit dirties exactly one loop.
TWO_LOOP_SOURCE = """
global @acc1 : i32 = 0
global @acc2 : i32 = 0

func @work1() -> i32 {{
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %a = load i32* @acc1
  %a2 = add i32 %a, %i
  store i32 %a2, i32* @acc1
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 60
  condbr i1 %c, %loop, %exit
exit:
  %r = load i32* @acc1
  ret i32 %r
}}

func @work2() -> i32 {{
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %a = load i32* @acc2
  %a2 = add i32 %a, {step}
  store i32 %a2, i32* @acc2
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 60
  condbr i1 %c, %loop, %exit
exit:
  %r = load i32* @acc2
  ret i32 %r
}}

func @main() -> i32 {{
entry:
  %x = call @work1()
  %y = call @work2()
  %s = add i32 %x, %y
  ret i32 %s
}}
"""


def _run_cached(source: str, cache_dir: str, system: str = "scaf",
                incremental: bool = True):
    config = ServiceConfig(workers=0, executor="inline",
                           cache_dir=cache_dir, incremental=incremental)
    with DependenceService(config) as service:
        return service.run_batch(
            [AnalysisRequest("incr", source, system=system)])


class TestIncremental:
    def test_edit_outside_footprint_serves_from_cache(self, tmp_path):
        """The tentpole acceptance path: after editing a function
        outside every loop's footprint, the warm batch re-answers every
        loop from the cache with zero module evaluations."""
        v1 = make_source() + PROBE_FUNC.format(step=1)
        v2 = make_source() + PROBE_FUNC.format(step=2)
        cold = _run_cached(v1, str(tmp_path))
        assert all(a.status == STATUS_COMPUTED for a in cold.flat())
        warm = _run_cached(v2, str(tmp_path))
        assert all(a.status == STATUS_CACHED for a in warm.flat())
        assert warm.telemetry.module_evals == 0
        assert warm.telemetry.loops_incremental == len(warm.flat())
        assert warm.telemetry.incremental_probes == 1
        assert identities(warm.flat()) == identities(cold.flat())

    def test_partial_dirty_recomputes_only_dirty_loop(self, tmp_path):
        """Editing @work2 must recompute @work2's loop and serve
        @work1's loop from its still-valid footprint."""
        cold = _run_cached(TWO_LOOP_SOURCE.format(step=1), str(tmp_path))
        warm = _run_cached(TWO_LOOP_SOURCE.format(step=2), str(tmp_path))
        by_loop = {a.loop: a for a in warm.flat()}
        assert by_loop["@work1:%loop"].status == STATUS_CACHED
        assert by_loop["@work2:%loop"].status == STATUS_COMPUTED
        assert 0 < warm.telemetry.module_evals < cold.telemetry.module_evals
        cold_w1 = next(a for a in cold.flat() if a.loop == "@work1:%loop")
        assert by_loop["@work1:%loop"].identity() == cold_w1.identity()

    def test_dirty_answers_are_reusable_in_turn(self, tmp_path):
        """A batch that mixed cached and recomputed loops re-persists
        the full roster: a third run behind the same edit is a pure
        exact-key hit."""
        _run_cached(TWO_LOOP_SOURCE.format(step=1), str(tmp_path))
        _run_cached(TWO_LOOP_SOURCE.format(step=2), str(tmp_path))
        third = _run_cached(TWO_LOOP_SOURCE.format(step=2), str(tmp_path))
        assert all(a.status == STATUS_CACHED for a in third.flat())
        assert third.telemetry.module_evals == 0
        assert third.telemetry.incremental_probes == 0  # exact hit

    def test_incremental_disabled_recomputes(self, tmp_path):
        v1 = make_source() + PROBE_FUNC.format(step=1)
        v2 = make_source() + PROBE_FUNC.format(step=2)
        _run_cached(v1, str(tmp_path), incremental=False)
        warm = _run_cached(v2, str(tmp_path), incremental=False)
        assert all(a.status == STATUS_COMPUTED for a in warm.flat())
        assert warm.telemetry.module_evals > 0
        assert warm.telemetry.incremental_probes == 0


# -- scoped footprints: header edits stop invalidating everything ------------

_SCOPED_WORKER = """
func @w{j}() -> i32 {{
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %a = load i32* @acc{j}
  %a2 = add i32 %a, %i
  store i32 %a2, i32* @acc{j}
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, {iters}
  condbr i1 %c, %loop, %exit
exit:
  %r = load i32* @acc{j}
  ret i32 %r
}}
"""

#: Four sibling hot loops (~25% of profiled time each), every one
#: touching its own global, so a header edit used to dirty all of them.
SCOPED_LOOPS_SOURCE = (
    "{extra}"
    + "".join(f"global @acc{j} : i32 = 0\n" for j in range(4))
    + "".join(_SCOPED_WORKER.replace("{j}", str(j)) for j in range(4))
    + """
func @main() -> i32 {{
entry:
  %x0 = call @w0()
  %x1 = call @w1()
  %x2 = call @w2()
  %x3 = call @w3()
  %s0 = add i32 %x0, %x1
  %s1 = add i32 %s0, %x2
  %s2 = add i32 %s1, %x3
  ret i32 %s2
}}
"""
)


class TestScopedFootprints:
    """Satellite: per-scan footprint tracing.  Whole-module sweeps
    record exactly which header entities they read, so an edit adding
    an *unrelated* global or struct revalidates every cached loop
    instead of recomputing the world."""

    def _batch(self, cache_dir: str, extra: str = ""):
        requests = [
            AnalysisRequest(
                f"scoped{k}",
                SCOPED_LOOPS_SOURCE.format(extra=extra,
                                           iters=60 + 2 * k),
                system="scaf")
            for k in range(4)
        ]
        config = ServiceConfig(workers=0, executor="inline",
                               cache_dir=cache_dir)
        with DependenceService(config) as service:
            return service.run_batch(requests)

    def test_unused_global_edit_reuses_all_sixteen_loops(self, tmp_path):
        cold = self._batch(str(tmp_path))
        assert len(cold.flat()) == 16
        assert all(a.status == STATUS_COMPUTED for a in cold.flat())
        reset_prepared_cache()
        warm = self._batch(str(tmp_path), extra="global @pad : i32 = 7\n")
        assert all(a.status == STATUS_CACHED for a in warm.flat())
        assert warm.telemetry.loops_incremental == 16
        assert warm.telemetry.loop_tasks_dispatched == 0
        assert warm.telemetry.module_evals == 0
        assert identities(warm.flat()) == identities(cold.flat())

    def _single(self, cache_dir: str, source: str):
        config = ServiceConfig(workers=0, executor="inline",
                               cache_dir=cache_dir)
        with DependenceService(config) as service:
            return service.run_batch(
                [AnalysisRequest("scoped", source, system="scaf")])

    def test_unused_global_edit_reuses_profile_roster(self, tmp_path):
        """The executed-scope digest is itself scoped now: a global the
        training run never touched does not perturb it, so the prior
        hot-loop roster is reused with zero re-interpretation."""
        base = SCOPED_LOOPS_SOURCE.format(extra="", iters=60)
        cold = self._single(str(tmp_path), base)
        reset_prepared_cache()
        edited = SCOPED_LOOPS_SOURCE.format(
            extra="global @pad : i32 = 7\n", iters=60)
        warm = self._single(str(tmp_path), edited)
        assert warm.telemetry.profile_reuses == 1
        assert warm.telemetry.module_evals == 0
        assert identities(warm.flat()) == identities(cold.flat())

    def test_touched_global_edit_reprofiles(self, tmp_path):
        """Editing a global the training run *does* read must defeat
        roster reuse — the digest covers every scanned entity."""
        base = SCOPED_LOOPS_SOURCE.format(extra="", iters=60)
        self._single(str(tmp_path), base)
        reset_prepared_cache()
        edited = base.replace("@acc0 : i32 = 0", "@acc0 : i32 = 5")
        dirty = self._single(str(tmp_path), edited)
        assert dirty.telemetry.profile_reuses == 0

    def test_unused_struct_edit_reuses_all_sixteen_loops(self, tmp_path):
        cold = self._batch(str(tmp_path))
        reset_prepared_cache()
        warm = self._batch(str(tmp_path),
                           extra="struct %pad { i32, f64 }\n")
        assert all(a.status == STATUS_CACHED for a in warm.flat())
        assert warm.telemetry.loops_incremental == 16
        assert warm.telemetry.loop_tasks_dispatched == 0
        assert identities(warm.flat()) == identities(cold.flat())

    def test_touched_global_edit_still_invalidates(self, tmp_path):
        """Sanity bound: editing a global a loop *does* read must not
        be revalidated away — only the untouched loops stay cached."""
        self._batch(str(tmp_path))
        reset_prepared_cache()
        requests = [
            AnalysisRequest(
                f"scoped{k}",
                SCOPED_LOOPS_SOURCE.format(
                    extra="", iters=60 + 2 * k).replace(
                        "@acc0 : i32 = 0", "@acc0 : i32 = 5"),
                system="scaf")
            for k in range(4)
        ]
        config = ServiceConfig(workers=0, executor="inline",
                               cache_dir=str(tmp_path))
        with DependenceService(config) as service:
            dirty = service.run_batch(requests)
        by_status = {s: [a.loop for a in dirty.flat() if a.status == s]
                     for s in (STATUS_COMPUTED, STATUS_CACHED)}
        assert all("@w0:" in loop for loop in by_status[STATUS_COMPUTED])
        assert len(by_status[STATUS_COMPUTED]) == 4
        assert len(by_status[STATUS_CACHED]) == 12

    def test_worker_footprints_are_scoped(self):
        from repro.ir import SCOPED_FOOTPRINT_SENTINEL
        request = AnalysisRequest(
            "scoped", SCOPED_LOOPS_SOURCE.format(extra="", iters=60),
            system="scaf")
        result = run_shard(ShardTask(request))
        assert result.footprints
        for loop, footprint in result.footprints.items():
            assert SCOPED_FOOTPRINT_SENTINEL in footprint
            assert any(n.startswith("global:") for n in footprint)

    def test_capture_scan_is_traced(self):
        from repro.modules.memory.common import capture_instructions
        module = parse_module(SCOPED_LOOPS_SOURCE.format(extra="",
                                                         iters=60))
        context = AnalysisContext(module)
        capture_instructions(context, module.globals["acc0"])
        assert ("global", "acc0") in context.scan_trace()
        context.reset_scan_trace()
        assert context.scan_trace() == frozenset()


# -- the contract property ---------------------------------------------------

@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    iters=st.sampled_from((55, 60, 72)),
    rare_store=st.booleans(),
    second_cell=st.booleans(),
    system=st.sampled_from(("caf", "confluence", "scaf",
                            "memory-speculation")),
)
def test_property_batched_equals_sequential(iters, rare_store,
                                            second_cell, system):
    """Service-batched answers are bitwise-identical to sequential
    coordinator.handle answers on a sampled workload."""
    source = make_source(iters=iters, rare_store=rare_store,
                         second_cell=second_cell)
    request = AnalysisRequest("prop", source, system=system)
    expected = identities(sequential_answers(request))

    scheduler = BatchScheduler(workers=0, executor="inline")
    [answers] = scheduler.run_batch([request])
    assert identities(answers) == expected


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    iters=st.sampled_from((55, 60)),
    rare_store=st.booleans(),
    system=st.sampled_from(("caf", "confluence", "scaf",
                            "memory-speculation")),
)
def test_property_incremental_equals_cold_recompute(iters, rare_store,
                                                    system):
    """Footprint-revalidated answers are bitwise-identical to what a
    cold recompute of the edited module would produce, on every
    system."""
    v2 = (make_source(iters=iters, rare_store=rare_store)
          + PROBE_FUNC.format(step=2))
    expected = identities(sequential_answers(
        AnalysisRequest("incr", v2, system=system)))

    cache_dir = tempfile.mkdtemp(prefix="scaf-incr-")
    v1 = (make_source(iters=iters, rare_store=rare_store)
          + PROBE_FUNC.format(step=1))
    _run_cached(v1, cache_dir, system=system)
    warm = _run_cached(v2, cache_dir, system=system)
    assert all(a.status == STATUS_CACHED for a in warm.flat())
    assert identities(warm.flat()) == expected


class TestTelemetry:
    def test_latency_histogram_percentiles(self):
        hist = LatencyHistogram()
        for ms in (1, 2, 3, 4, 100):
            hist.record(ms / 1000.0)
        assert hist.total == 5
        assert hist.percentile(50) <= hist.percentile(99)
        assert hist.max_s == pytest.approx(0.1)
        assert hist.mean_s == pytest.approx(0.022)

    def test_report_renders(self):
        scheduler = BatchScheduler(workers=0, executor="inline")
        request = AnalysisRequest("t", make_source(), system="caf")
        scheduler.run_batch([request])
        from repro.service import format_report
        report = format_report(scheduler.telemetry.snapshot())
        assert "service telemetry" in report
        assert "hit rate" in report
