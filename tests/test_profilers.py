"""Tests for the five profilers (§4.2.2) and the profile bundle."""

import pytest

from repro.analysis import AnalysisContext
from repro.ir import parse_module
from repro.profiling import run_profilers


def profile(text, **kwargs):
    m = parse_module(text)
    ctx = AnalysisContext(m)
    return m, ctx, run_profilers(m, ctx, **kwargs)


BIASED = """
global @flag : i32 = 0
global @x : i32 = 0
global @hits : i32 = 0

func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %latch]
  %f = load i32* @flag
  %c = icmp ne i32 %f, 0
  condbr i1 %c, %rare, %common
rare:
  store i32 1, i32* @hits
  br %latch
common:
  store i32 %i, i32* @x
  br %latch
latch:
  %i2 = add i32 %i, 1
  %lc = icmp slt i32 %i2, 20
  condbr i1 %lc, %loop, %exit
exit:
  ret i32 0
}
"""


class TestEdgeProfiler:
    def test_block_counts(self):
        m, ctx, p = profile(BIASED)
        fn = m.get_function("main")
        assert p.edge.block_count(fn.get_block("loop")) == 20
        assert p.edge.block_count(fn.get_block("common")) == 20
        assert p.edge.block_count(fn.get_block("rare")) == 0
        assert p.edge.block_count(fn.get_block("exit")) == 1

    def test_dead_blocks(self):
        m, ctx, p = profile(BIASED)
        fn = m.get_function("main")
        dead = p.edge.dead_blocks(fn)
        assert [b.name for b in dead] == ["rare"]

    def test_biased_branches(self):
        m, ctx, p = profile(BIASED)
        fn = m.get_function("main")
        biased = p.edge.biased_branches(fn)
        pairs = {(s.name, d.name) for s, d in biased}
        assert ("loop", "rare") in pairs

    def test_edge_counts(self):
        m, ctx, p = profile(BIASED)
        fn = m.get_function("main")
        assert p.edge.edge_count(fn.get_block("latch"),
                                 fn.get_block("loop")) == 19
        assert p.edge.edge_count(fn.get_block("loop"),
                                 fn.get_block("rare")) == 0

    def test_unexecuted_function_reports_no_dead_blocks(self):
        m, ctx, p = profile("""
func @never() -> i32 {
entry:
  ret i32 1
}
func @main() -> i32 {
entry:
  ret i32 0
}
""")
        assert p.edge.dead_blocks(m.get_function("never")) == []


class TestValueProfiler:
    def test_constant_load_predictable(self):
        m, ctx, p = profile("""
global @cfg : i32 = 11
global @var : i32 = 0
func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %c = load i32* @cfg
  %v = load i32* @var
  %v2 = add i32 %v, %c
  store i32 %v2, i32* @var
  %i2 = add i32 %i, 1
  %cond = icmp slt i32 %i2, 10
  condbr i1 %cond, %loop, %exit
exit:
  ret i32 0
}
""")
        fn = m.get_function("main")
        loads = [i for i in fn.instructions() if i.opcode == "load"]
        cfg_load = next(l for l in loads if l.name == "c")
        var_load = next(l for l in loads if l.name == "v")
        assert p.value.is_predictable(cfg_load)
        assert p.value.predicted_value(cfg_load) == 11
        assert not p.value.is_predictable(var_load)

    def test_single_execution_not_predictable(self):
        m, ctx, p = profile("""
global @x : i32 = 5
func @main() -> i32 {
entry:
  %v = load i32* @x
  ret i32 %v
}
""")
        load = next(i for i in m.get_function("main").instructions()
                    if i.opcode == "load")
        assert not p.value.is_predictable(load)  # below min_count


class TestPointsToProfiler:
    SOURCE = """
global @a_ptr : i32* = zeroinit
global @b_ptr : i32* = zeroinit
declare @malloc(i64) -> i8*
func @main() -> i32 {
entry:
  %a.raw = call @malloc(i64 64)
  %a = bitcast i8* %a.raw to i32*
  store i32* %a, i32** @a_ptr
  %b.raw = call @malloc(i64 64)
  %b = bitcast i8* %b.raw to i32*
  store i32* %b, i32** @b_ptr
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i2, %loop]
  %ap = load i32** @a_ptr
  %a.slot = gep i32* %ap, i64 %i
  %av = load i32* %a.slot
  %bp = load i32** @b_ptr
  %b.slot = gep i32* %bp, i64 %i
  store i32 %av, i32* %b.slot
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 8
  condbr i1 %c, %loop, %exit
exit:
  ret i32 0
}
"""

    def test_disjoint_site_sets(self):
        m, ctx, p = profile(self.SOURCE)
        fn = m.get_function("main")
        av = next(i for i in fn.instructions() if i.name == "av")
        store = [i for i in fn.instructions() if i.opcode == "store"][-1]
        s1 = p.points_to.sites_of(av.pointer)
        s2 = p.points_to.sites_of(store.pointer)
        assert s1 and s2
        anchors1 = {s.anchor for s in s1}
        anchors2 = {s.anchor for s in s2}
        assert not (anchors1 & anchors2)

    def test_read_only_sites(self):
        m, ctx, p = profile(self.SOURCE)
        fn = m.get_function("main")
        loop = ctx.loop_info(fn).loops[0]
        ro = p.points_to.read_only_sites(loop)
        a_raw = next(i for i in fn.instructions() if i.name == "a.raw")
        b_raw = next(i for i in fn.instructions() if i.name == "b.raw")
        ro_anchors = {s.anchor for s in ro}
        assert a_raw in ro_anchors       # only read inside the loop
        assert b_raw not in ro_anchors   # written inside the loop


class TestResidueProfiler:
    def test_disjoint_residues(self):
        m, ctx, p = profile("""
declare @malloc(i64) -> i8*
func @main() -> i32 {
entry:
  %raw = call @malloc(i64 128)
  %base = bitcast i8* %raw to f64*
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i2, %loop]
  %even.i = mul i64 %i, 2
  %odd.i = add i64 %even.i, 1
  %e.slot = gep f64* %base, i64 %even.i
  %ev = load f64* %e.slot
  %o.slot = gep f64* %base, i64 %odd.i
  store f64 %ev, f64* %o.slot
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 8
  condbr i1 %c, %loop, %exit
exit:
  ret i32 0
}
""")
        fn = m.get_function("main")
        ev = next(i for i in fn.instructions() if i.name == "ev")
        st = [i for i in fn.instructions() if i.opcode == "store"][-1]
        # 16-byte stride keeps even slots at residue 0, odd at 8.
        assert p.residue.residue_set(ev.pointer) == {0}
        assert p.residue.residue_set(st.pointer) == {8}
        assert p.residue.disjoint(ev.pointer, 8, st.pointer, 8)
        assert not p.residue.disjoint(ev.pointer, 8, st.pointer, 9)

    def test_unprofiled_is_not_disjoint(self):
        m, ctx, p = profile("""
func @main() -> i32 {
entry:
  ret i32 0
}
""")
        from repro.ir import GlobalVariable, I32
        g = GlobalVariable("x", I32)
        assert not p.residue.disjoint(g, 4, g, 4)


class TestLifetimeProfiler:
    def test_short_lived_site(self):
        m, ctx, p = profile("""
declare @malloc(i64) -> i8*
declare @free(i8*) -> void
func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %raw = call @malloc(i64 16)
  %ptr = bitcast i8* %raw to i32*
  store i32 %i, i32* %ptr
  call @free(i8* %raw)
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 10
  condbr i1 %c, %loop, %exit
exit:
  ret i32 0
}
""")
        fn = m.get_function("main")
        loop = ctx.loop_info(fn).loops[0]
        sl = p.lifetime.short_lived_sites(loop)
        raw = next(i for i in fn.instructions() if i.name == "raw")
        assert raw in {s.anchor for s in sl}

    def test_surviving_object_disqualified(self):
        m, ctx, p = profile("""
declare @malloc(i64) -> i8*
declare @free(i8*) -> void
global @keep : i8* = zeroinit
func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %raw = call @malloc(i64 16)
  store i8* %raw, i8** @keep
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 10
  condbr i1 %c, %loop, %exit
exit:
  %last = load i8** @keep
  call @free(i8* %last)
  ret i32 0
}
""")
        fn = m.get_function("main")
        loop = ctx.loop_info(fn).loops[0]
        assert p.lifetime.short_lived_sites(loop) == set()


class TestMemDepProfiler:
    def test_cross_iteration_dependence_observed(self):
        m, ctx, p = profile("""
global @acc : i32 = 0
func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %v = load i32* @acc
  %v2 = add i32 %v, %i
  store i32 %v2, i32* @acc
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 5
  condbr i1 %c, %loop, %exit
exit:
  ret i32 0
}
""")
        fn = m.get_function("main")
        loop = ctx.loop_info(fn).loops[0]
        load = next(i for i in fn.instructions() if i.name == "v")
        store = next(i for i in fn.instructions() if i.opcode == "store")
        # store in iteration k feeds the load in iteration k+1.
        assert p.memdep.is_observed(loop, store, load, cross=True)
        # load before store in the same iteration: anti dependence.
        assert p.memdep.is_observed(loop, load, store, cross=False)
        # no intra-iteration flow (load precedes store).
        assert not p.memdep.is_observed(loop, store, load, cross=False)

    def test_disjoint_accesses_not_observed(self):
        m, ctx, p = profile("""
global @a : [8 x i32] = zeroinit
global @b : [8 x i32] = zeroinit
func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i2, %loop]
  %pa = gep [8 x i32]* @a, i64 0, i64 %i
  %v = load i32* %pa
  %pb = gep [8 x i32]* @b, i64 0, i64 %i
  store i32 %v, i32* %pb
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 8
  condbr i1 %c, %loop, %exit
exit:
  ret i32 0
}
""")
        fn = m.get_function("main")
        loop = ctx.loop_info(fn).loops[0]
        load = next(i for i in fn.instructions() if i.name == "v")
        store = next(i for i in fn.instructions() if i.opcode == "store")
        assert not p.memdep.is_observed(loop, load, store, cross=False)
        assert not p.memdep.is_observed(loop, store, load, cross=True)

    def test_callee_access_attributed_to_callsite(self):
        m, ctx, p = profile("""
global @g : i32 = 0
func @bump() -> void {
entry:
  %v = load i32* @g
  %v2 = add i32 %v, 1
  store i32 %v2, i32* @g
  ret
}
func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  call @bump()
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 5
  condbr i1 %c, %loop, %exit
exit:
  ret i32 0
}
""")
        fn = m.get_function("main")
        loop = ctx.loop_info(fn).loops[0]
        call = next(i for i in fn.instructions() if i.opcode == "call")
        # The callee's store->load chain appears as a call->call
        # self-dependence at loop level.
        assert p.memdep.is_observed(loop, call, call, cross=True)


class TestBundle:
    def test_bundle_fields(self):
        m, ctx, p = profile(BIASED)
        assert p.total_instructions > 0
        assert p.exit_value == 0
        assert p.loop_stats
