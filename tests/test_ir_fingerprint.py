"""Tests for the canonical content fingerprints (repro.ir.fingerprint)."""

from repro.ir import (
    function_fingerprint,
    module_fingerprints,
    module_header_fingerprint,
    parse_module,
)

TWO_FUNCS = """
global @cell : i32 = 0

func @helper(i32 %x) -> i32 {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

func @main() -> i32 {
entry:
  %v = call @helper(i32 3)
  store i32 %v, i32* @cell
  ret i32 %v
}
"""


def test_fingerprint_stable_across_reparses():
    a = module_fingerprints(parse_module(TWO_FUNCS))
    b = module_fingerprints(parse_module(TWO_FUNCS))
    assert a == b
    assert set(a) == {"helper", "main"}


def test_fingerprint_position_and_whitespace_independent():
    """Shifting a function's position in the file or reformatting the
    source must not change its hash: the printer canonicalizes both."""
    shifted = TWO_FUNCS.replace(
        "func @helper",
        "func @noise() -> i32 {\nentry:\n  ret i32 0\n}\n\nfunc @helper")
    indented = TWO_FUNCS.replace("\n  ", "\n      ")
    base = module_fingerprints(parse_module(TWO_FUNCS))
    shifted_fps = module_fingerprints(parse_module(shifted))
    assert {n: shifted_fps[n] for n in base} == base
    assert module_fingerprints(parse_module(indented)) == base


def test_edit_changes_only_that_function():
    edited = TWO_FUNCS.replace("add i32 %x, 1", "add i32 %x, 2")
    base = module_fingerprints(parse_module(TWO_FUNCS))
    after = module_fingerprints(parse_module(edited))
    assert after["helper"] != base["helper"]
    assert after["main"] == base["main"]


def test_function_rename_changes_hash():
    m = parse_module(TWO_FUNCS)
    renamed = parse_module(TWO_FUNCS.replace("@helper", "@assist"))
    assert function_fingerprint(m.functions["helper"]) != \
        function_fingerprint(renamed.functions["assist"])


def test_header_fingerprint_tracks_globals_not_functions():
    base = module_header_fingerprint(parse_module(TWO_FUNCS))
    fn_edit = module_header_fingerprint(parse_module(
        TWO_FUNCS.replace("add i32 %x, 1", "add i32 %x, 2")))
    global_edit = module_header_fingerprint(parse_module(
        TWO_FUNCS.replace("@cell : i32 = 0", "@cell : i32 = 7")))
    assert fn_edit == base
    assert global_edit != base
