"""Tests for the canonical content fingerprints (repro.ir.fingerprint)."""

from repro.ir import (
    SCOPED_FOOTPRINT_SENTINEL,
    function_fingerprint,
    module_content_fingerprints,
    module_fingerprints,
    module_header_fingerprint,
    parse_module,
)

TWO_FUNCS = """
global @cell : i32 = 0

func @helper(i32 %x) -> i32 {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

func @main() -> i32 {
entry:
  %v = call @helper(i32 3)
  store i32 %v, i32* @cell
  ret i32 %v
}
"""


def test_fingerprint_stable_across_reparses():
    a = module_fingerprints(parse_module(TWO_FUNCS))
    b = module_fingerprints(parse_module(TWO_FUNCS))
    assert a == b
    assert set(a) == {"helper", "main"}


def test_fingerprint_position_and_whitespace_independent():
    """Shifting a function's position in the file or reformatting the
    source must not change its hash: the printer canonicalizes both."""
    shifted = TWO_FUNCS.replace(
        "func @helper",
        "func @noise() -> i32 {\nentry:\n  ret i32 0\n}\n\nfunc @helper")
    indented = TWO_FUNCS.replace("\n  ", "\n      ")
    base = module_fingerprints(parse_module(TWO_FUNCS))
    shifted_fps = module_fingerprints(parse_module(shifted))
    assert {n: shifted_fps[n] for n in base} == base
    assert module_fingerprints(parse_module(indented)) == base


def test_edit_changes_only_that_function():
    edited = TWO_FUNCS.replace("add i32 %x, 1", "add i32 %x, 2")
    base = module_fingerprints(parse_module(TWO_FUNCS))
    after = module_fingerprints(parse_module(edited))
    assert after["helper"] != base["helper"]
    assert after["main"] == base["main"]


def test_function_rename_changes_hash():
    m = parse_module(TWO_FUNCS)
    renamed = parse_module(TWO_FUNCS.replace("@helper", "@assist"))
    assert function_fingerprint(m.functions["helper"]) != \
        function_fingerprint(renamed.functions["assist"])


def test_header_fingerprint_tracks_globals_not_functions():
    base = module_header_fingerprint(parse_module(TWO_FUNCS))
    fn_edit = module_header_fingerprint(parse_module(
        TWO_FUNCS.replace("add i32 %x, 1", "add i32 %x, 2")))
    global_edit = module_header_fingerprint(parse_module(
        TWO_FUNCS.replace("@cell : i32 = 0", "@cell : i32 = 7")))
    assert fn_edit == base
    assert global_edit != base


# -- per-entity (scoped) fingerprints ----------------------------------------

STRUCT_FUNCS = "struct %pair { i32, i32 }\n" + TWO_FUNCS


def test_content_fingerprints_cover_every_entity():
    fps = module_content_fingerprints(parse_module(STRUCT_FUNCS))
    assert {"helper", "main", "struct:pair", "global:cell",
            "globalusers:cell", SCOPED_FOOTPRINT_SENTINEL} == set(fps)
    # The plain function entries agree with module_fingerprints.
    base = module_fingerprints(parse_module(STRUCT_FUNCS))
    assert {n: fps[n] for n in base} == base


def test_unrelated_global_leaves_scoped_entries_unchanged():
    """The satellite invariant: adding an unused global changes the
    whole-header hash but no per-entity fingerprint."""
    base = module_content_fingerprints(parse_module(STRUCT_FUNCS))
    padded_src = "global @pad : i32 = 7\n" + STRUCT_FUNCS
    padded = module_content_fingerprints(parse_module(padded_src))
    assert {n: padded[n] for n in base} == base
    assert module_header_fingerprint(parse_module(padded_src)) != \
        module_header_fingerprint(parse_module(STRUCT_FUNCS))


def test_global_initializer_edit_changes_global_entries():
    base = module_content_fingerprints(parse_module(TWO_FUNCS))
    edited = module_content_fingerprints(parse_module(
        TWO_FUNCS.replace("@cell : i32 = 0", "@cell : i32 = 7")))
    assert edited["global:cell"] != base["global:cell"]
    assert edited["globalusers:cell"] != base["globalusers:cell"]


def test_new_referencing_function_changes_only_globalusers():
    """A users-of-global scan depends on *which* functions mention the
    global; a mere reference footprint (global:) does not."""
    base = module_content_fingerprints(parse_module(TWO_FUNCS))
    extended = module_content_fingerprints(parse_module(
        TWO_FUNCS + "\nfunc @extra() -> i32 {\nentry:\n"
        "  %v = load i32* @cell\n  ret i32 %v\n}\n"))
    assert extended["globalusers:cell"] != base["globalusers:cell"]
    assert extended["global:cell"] == base["global:cell"]
    assert extended["main"] == base["main"]


def test_struct_field_edit_changes_struct_entry():
    base = module_content_fingerprints(parse_module(STRUCT_FUNCS))
    edited = module_content_fingerprints(parse_module(
        STRUCT_FUNCS.replace("{ i32, i32 }", "{ i32, f64 }")))
    assert edited["struct:pair"] != base["struct:pair"]
    assert edited["main"] == base["main"]
