"""Integration tests for the system builders and the PDG client."""

import pytest

from repro import (
    build_caf,
    build_confluence,
    build_memory_speculation,
    build_scaf,
)
from repro.analysis import AnalysisContext
from repro.clients import PDGClient, hot_loops, weighted_no_dep
from repro.ir import parse_module
from repro.profiling import run_profilers
from repro.query import ModRefResult


SOURCE = """
global @flag : i32 = 0
global @a : i32 = 0
global @b : i32 = 0
global @hits : i32 = 0

func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %latch]
  %f = load i32* @flag
  %c = icmp ne i32 %f, 0
  condbr i1 %c, %rare, %common
rare:
  store i32 1, i32* @hits
  br %join
common:
  store i32 %i, i32* @a
  br %join
join:
  %av = load i32* @a
  store i32 %av, i32* @b
  %i2 = add i32 %i, 1
  store i32 %i2, i32* @a
  br %latch
latch:
  %lc = icmp slt i32 %i2, 60
  condbr i1 %lc, %loop, %exit
exit:
  ret i32 0
}
"""


@pytest.fixture(scope="module")
def world():
    m = parse_module(SOURCE)
    ctx = AnalysisContext(m)
    profiles = run_profilers(m, ctx)
    return m, ctx, profiles


class TestBuilders:
    def test_all_four_systems_build(self, world):
        m, ctx, profiles = world
        for builder in (build_caf, build_confluence, build_scaf,
                        build_memory_speculation):
            if builder is build_caf:
                system = builder(m, ctx, profiles)
            else:
                system = builder(m, profiles, ctx)
            assert system.coordinator is not None

    def test_scaf_has_19_modules(self, world):
        m, ctx, profiles = world
        scaf = build_scaf(m, profiles, ctx)
        assert len(scaf.coordinator.modules) == 19  # 13 memory + 6 spec

    def test_memory_modules_ordered_first(self, world):
        m, ctx, profiles = world
        scaf = build_scaf(m, profiles, ctx)
        kinds = [mod.is_speculative for mod in scaf.coordinator.modules]
        assert kinds == sorted(kinds)  # all False before all True


class TestFacadeStats:
    def test_stats_surface_and_reset(self, world):
        m, ctx, profiles = world
        scaf = build_scaf(m, profiles, ctx)
        hot = hot_loops(profiles)[0]
        PDGClient(scaf).analyze_loop(hot.loop)
        assert scaf.stats.queries > 0
        assert scaf.stats.total_module_evals > 0
        assert scaf.stats.cache_size > 0
        assert 0.0 <= scaf.stats.cache_hit_rate <= 1.0
        scaf.reset_stats()
        assert scaf.stats.queries == 0
        assert scaf.stats.cache_size > 0  # memo survives a stats reset

    def test_confluence_stats_delegate(self, world):
        m, ctx, profiles = world
        conf = build_confluence(m, profiles, ctx)
        hot = hot_loops(profiles)[0]
        PDGClient(conf).analyze_loop(hot.loop)
        assert conf.stats.queries > 0
        # Solo speculation-module evaluations are folded in.
        assert any(name != "caf" for name in conf.stats.module_evals)
        conf.reset_stats()
        assert conf.stats.queries == 0


class TestHotLoops:
    def test_selection_criteria(self, world):
        m, ctx, profiles = world
        hot = hot_loops(profiles)
        assert len(hot) == 1
        assert hot[0].loop.header.name == "loop"
        assert hot[0].time_fraction >= 0.10
        assert hot[0].stats.average_trip_count >= 50

    def test_thresholds_exclude(self, world):
        m, ctx, profiles = world
        assert hot_loops(profiles, min_average_trip_count=1000) == []
        assert hot_loops(profiles, min_time_fraction=1.01) == []


class TestPDGClient:
    def test_monotonicity(self, world):
        """CAF <= confluence <= SCAF <= memory speculation (%NoDep)."""
        m, ctx, profiles = world
        hot = hot_loops(profiles)
        results = {}
        systems = [
            ("caf", build_caf(m, ctx, profiles)),
            ("conf", build_confluence(m, profiles, ctx)),
            ("scaf", build_scaf(m, profiles, ctx)),
            ("memspec", build_memory_speculation(m, profiles, ctx)),
        ]
        for name, system in systems:
            pdgs = [PDGClient(system).analyze_loop(h.loop) for h in hot]
            results[name] = weighted_no_dep(hot, pdgs)
        assert results["caf"] <= results["conf"] <= results["scaf"]

    def test_scaf_beats_confluence_here(self, world):
        m, ctx, profiles = world
        hot = hot_loops(profiles)[0]
        scaf = PDGClient(build_scaf(m, profiles, ctx)).analyze_loop(hot.loop)
        conf = PDGClient(
            build_confluence(m, profiles, ctx)).analyze_loop(hot.loop)
        assert scaf.no_dep_count > conf.no_dep_count

    def test_pairs_without_writer_skipped(self, world):
        m, ctx, profiles = world
        hot = hot_loops(profiles)[0]
        pdg = PDGClient(build_caf(m, ctx, profiles)).analyze_loop(hot.loop)
        for record in pdg.records:
            assert record.src.writes_memory or record.dst.writes_memory

    def test_prohibitive_options_discarded(self, world):
        m, ctx, profiles = world
        hot = hot_loops(profiles)[0]
        pdg = PDGClient(build_scaf(m, profiles, ctx),
                        discard_prohibitive=True).analyze_loop(hot.loop)
        for record in pdg.records:
            if record.removed:
                assert record.validation_cost < 1e9

    def test_to_networkx(self, world):
        m, ctx, profiles = world
        hot = hot_loops(profiles)[0]
        pdg = PDGClient(build_caf(m, ctx, profiles)).analyze_loop(hot.loop)
        graph = pdg.to_networkx()
        assert graph.number_of_nodes() == len(
            [i for i in hot.loop.instructions() if i.accesses_memory])
        assert graph.number_of_edges() == len(pdg.dependences)

    def test_metrics(self, world):
        m, ctx, profiles = world
        hot = hot_loops(profiles)[0]
        pdg = PDGClient(build_caf(m, ctx, profiles)).analyze_loop(hot.loop)
        assert 0.0 <= pdg.no_dep_percent <= 100.0
        assert pdg.no_dep_count + len(pdg.dependences) == pdg.total_queries


class TestSoundnessInvariant:
    def test_no_removed_dependence_was_observed(self, world):
        """High-confidence speculation never removes a dependence that
        manifested during the training run."""
        m, ctx, profiles = world
        hot = hot_loops(profiles)[0]
        for builder in (lambda: build_caf(m, ctx, profiles),
                        lambda: build_confluence(m, profiles, ctx),
                        lambda: build_scaf(m, profiles, ctx),
                        lambda: build_memory_speculation(m, profiles, ctx)):
            pdg = PDGClient(builder()).analyze_loop(hot.loop)
            observed = profiles.memdep.observed_pairs(hot.loop)
            for record in pdg.records:
                if record.removed:
                    key = (record.src, record.dst, record.cross_iteration)
                    assert key not in observed
