"""Unit tests for metrics, hot loops, and the CFGView abstraction."""

import pytest

from repro.analysis import AnalysisContext
from repro.clients import hot_loops
from repro.clients.hotloops import HotLoop
from repro.clients.metrics import geometric_mean, weighted_no_dep
from repro.clients.pdg import LoopPDG
from repro.interp import LoopStats
from repro.ir import parse_module
from repro.profiling import run_profilers
from repro.query import CFGView


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([4.0, 16.0]) == pytest.approx(8.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_zero_floored(self):
        assert geometric_mean([0.0, 100.0]) > 0.0

    def test_no_underflow_on_long_small_sequences(self):
        values = [1e-5] * 10_000
        assert geometric_mean(values) == pytest.approx(1e-5)


class _FakeLoop:
    def __init__(self, name):
        self.name = name


def _hot(loop, fraction):
    stats = LoopStats()
    stats.invocations = 1
    stats.iterations = 100
    return HotLoop(loop, fraction, stats)


def _pdg(loop, removed, total):
    pdg = LoopPDG(loop)

    class _R:
        def __init__(self, is_removed):
            self.removed = is_removed
            self.validation_cost = 0.0

    pdg.records = [_R(i < removed) for i in range(total)]
    return pdg


class TestWeightedNoDep:
    def test_single_loop(self):
        loop = _FakeLoop("l")
        assert weighted_no_dep([_hot(loop, 0.5)],
                               [_pdg(loop, 50, 100)]) == 50.0

    def test_weighting(self):
        l1, l2 = _FakeLoop("a"), _FakeLoop("b")
        result = weighted_no_dep(
            [_hot(l1, 0.9), _hot(l2, 0.1)],
            [_pdg(l1, 100, 100), _pdg(l2, 0, 100)])
        assert result == pytest.approx(90.0)

    def test_empty(self):
        assert weighted_no_dep([], []) == 0.0

    def test_missing_pdg_skipped(self):
        l1, l2 = _FakeLoop("a"), _FakeLoop("b")
        result = weighted_no_dep([_hot(l1, 0.5), _hot(l2, 0.5)],
                                 [_pdg(l1, 100, 100)])
        assert result == pytest.approx(100.0)


NESTED = """
global @x : i32 = 0
func @main() -> i32 {
entry:
  br %outer
outer:
  %i = phi i32 [0, %entry], [%i2, %outer.latch]
  br %inner
inner:
  %j = phi i32 [0, %outer], [%j2, %inner]
  %v = load i32* @x
  store i32 %j, i32* @x
  %j2 = add i32 %j, 1
  %jc = icmp slt i32 %j2, 80
  condbr i1 %jc, %inner, %outer.latch
outer.latch:
  %i2 = add i32 %i, 1
  %ic = icmp slt i32 %i2, 3
  condbr i1 %ic, %outer, %exit
exit:
  ret i32 0
}
"""


class TestHotLoopSelection:
    def test_nested_selection(self):
        m = parse_module(NESTED)
        ctx = AnalysisContext(m)
        profiles = run_profilers(m, ctx)
        hot = hot_loops(profiles)
        names = {h.loop.header.name for h in hot}
        # Inner: 80 iters/invocation, ~all the time -> hot.
        assert "inner" in names
        # Outer: only 3 iterations/invocation -> excluded.
        assert "outer" not in names

    def test_sorted_by_weight(self):
        m = parse_module(NESTED)
        ctx = AnalysisContext(m)
        profiles = run_profilers(m, ctx)
        hot = hot_loops(profiles, min_time_fraction=0.0,
                        min_average_trip_count=0.0)
        fractions = [h.time_fraction for h in hot]
        assert fractions == sorted(fractions, reverse=True)


class TestCFGView:
    def test_static_view(self):
        m = parse_module(NESTED)
        ctx = AnalysisContext(m)
        fn = m.get_function("main")
        view = CFGView.static(ctx, fn)
        assert not view.is_speculative
        for bb in fn.blocks:
            assert view.is_live(bb)

    def test_speculative_view_hides_dead(self):
        m = parse_module(NESTED)
        ctx = AnalysisContext(m)
        fn = m.get_function("main")
        inner = fn.get_block("inner")
        dead = frozenset({fn.get_block("outer.latch")})
        view = CFGView(fn, ctx.dominator_tree(fn, ignore=dead),
                       ctx.dominator_tree(fn, ignore=dead, post=True),
                       dead)
        assert view.is_speculative
        assert not view.is_live(fn.get_block("outer.latch"))
        assert view.is_live(inner)

    def test_reachability_respects_dead(self):
        m = parse_module(NESTED)
        ctx = AnalysisContext(m)
        fn = m.get_function("main")
        dead = frozenset({fn.get_block("inner")})
        view = CFGView(fn, ctx.dominator_tree(fn, ignore=dead),
                       ctx.dominator_tree(fn, ignore=dead, post=True),
                       dead)
        assert not view.reachable(fn.get_block("entry"),
                                  fn.get_block("exit"))
