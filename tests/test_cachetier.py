"""Tests for the tiered result cache (repro.cachetier).

Covers the RESP wire client against the in-memory fake server, the
bundle transport through the sqlite L1, read-through/write-behind
composition across two services sharing one L2, every injected L2
failure mode (refused connect, mid-request disconnect, slow reply past
the deadline) degrading to L1-only without failing a query, write-
behind overflow shedding, sqlite lock-retry accounting, and the
contract property: answers with an L2 attached are byte-identical to
answers without one.
"""

import sqlite3
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cachetier import (
    FakeRespServer,
    L2ConnectError,
    L2ProtocolError,
    RespBackend,
    TieredCache,
    backend_from_url,
)
from repro.cachetier.backend import CacheBackend
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    AnalysisRequest,
    DependenceService,
    ResultCache,
    ServiceConfig,
    STATUS_CACHED,
    STATUS_FALLBACK,
    fallback_answer,
    reset_prepared_cache,
)


@pytest.fixture(autouse=True)
def _fresh_prepared_cache():
    reset_prepared_cache()
    yield
    reset_prepared_cache()


@pytest.fixture
def server():
    srv = FakeRespServer().start()
    yield srv
    srv.stop()


SOURCE = """
{extra}global @cell : i32 = 0

func @main() -> i32 {{
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %v = load i32* @cell
  %v2 = add i32 %v, {step}
  store i32 %v2, i32* @cell
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 60
  condbr i1 %c, %loop, %exit
exit:
  %r = load i32* @cell
  ret i32 %r
}}
"""


def _request(step: int = 1, extra: str = "") -> AnalysisRequest:
    return AnalysisRequest("tiered",
                           SOURCE.format(step=step, extra=extra),
                           system="scaf")


def _config(cache_dir, l2_url=None, **kw) -> ServiceConfig:
    return ServiceConfig(workers=0, executor="inline",
                         cache_dir=str(cache_dir), cache_l2=l2_url, **kw)


def _seed_l1(cache: ResultCache, key: str = "vk1",
             lineage: str = "lin1") -> None:
    """One minimal stored entry (no footprints: exact-key only)."""
    cache.store(key, workload="w", system="scaf", entry="main",
                modules=["w"], profile_digest="pd",
                hot_loops=["@main:%loop"],
                answers=[fallback_answer("w", "scaf", "@main:%loop")],
                lineage_key=lineage)


def identities(answers):
    return [a.identity() for a in answers]


# -- RESP client against the fake server -------------------------------------

class TestRespBackend:
    def test_round_trip(self, server):
        backend = backend_from_url(server.url)
        assert backend.ping()
        assert backend.get("missing") is None
        backend.put("k", b"value\r\nwith\x00binary")
        assert backend.get("k") == b"value\r\nwith\x00binary"
        backend.sadd("s", "b")
        backend.sadd("s", "a")
        backend.sadd("s", "a")
        assert backend.smembers("s") == ("a", "b")
        assert backend.smembers("empty") == ()
        backend.delete("k")
        assert backend.get("k") is None
        backend.close()
        assert server.gets >= 2 and server.stores >= 1

    def test_unknown_command_is_protocol_error(self, server):
        backend = RespBackend(server.host, server.port)
        with pytest.raises(L2ProtocolError):
            backend._command("FLUSHALL")
        backend.close()

    def test_reconnects_after_drop(self, server):
        backend = backend_from_url(server.url)
        backend.put("k", b"v")
        backend._drop_connection()
        assert backend.get("k") == b"v"  # lazily reconnected
        backend.close()

    def test_url_parsing(self):
        backend = backend_from_url("redis://example:6379", timeout_s=2.5)
        assert (backend.host, backend.port) == ("example", 6379)
        assert backend.timeout_s == 2.5
        assert backend_from_url("127.0.0.1:12345").port == 12345
        with pytest.raises(ValueError):
            backend_from_url("memcached://host:1")
        with pytest.raises(ValueError):
            backend_from_url("redis://no-port")


# -- bundle transport ---------------------------------------------------------

class TestBundles:
    def test_export_adopt_round_trip(self, tmp_path):
        src = ResultCache(str(tmp_path / "a"))
        _seed_l1(src)
        bundle = src.export_bundle("vk1")
        assert bundle["v"] == 1
        assert bundle["meta"]["version_key"] == "vk1"
        assert [a["loop_name"] for a in bundle["answers"]] \
            == ["@main:%loop"]

        dst = ResultCache(str(tmp_path / "b"))
        assert dst.adopt_bundle(bundle)
        # Digest-bearing columns travel verbatim.
        assert dst.export_bundle("vk1") == bundle
        assert dst.meta("vk1").lineage_key == "lin1"
        assert dst.lookup("vk1") is not None
        src.close()
        dst.close()

    def test_export_missing_key(self, tmp_path):
        with ResultCache(str(tmp_path)) as cache:
            assert cache.export_bundle("absent") is None

    def test_adopt_rejects_malformed(self, tmp_path):
        with ResultCache(str(tmp_path)) as cache:
            assert not cache.adopt_bundle({"v": 2, "meta": {},
                                           "answers": []})
            assert not cache.adopt_bundle({"v": 1, "answers": []})
            assert not cache.adopt_bundle(
                {"v": 1, "meta": {"version_key": "x"}, "answers": []})
            assert not cache.adopt_bundle("not a mapping")
            assert cache.keys() == []


# -- read-through / write-behind ---------------------------------------------

class TestTieredCache:
    def test_write_behind_publishes_and_reads_through(self, tmp_path,
                                                      server):
        registry = MetricsRegistry()
        a = TieredCache(ResultCache(str(tmp_path / "a")),
                        backend_from_url(server.url), registry)
        _seed_l1(a)
        assert a.flush()
        assert registry.value("l2_writes") == 1
        assert any(k.endswith(":bundle:vk1") for k in server.strings)
        a.close()

        fresh = MetricsRegistry()
        b = TieredCache(ResultCache(str(tmp_path / "b")),
                        backend_from_url(server.url), fresh)
        assert b.lookup("vk1") is not None      # adopted from L2
        assert fresh.value("l1_misses") == 1
        assert fresh.value("l2_hits") == 1
        assert b.lookup("vk1") is not None      # now local
        assert fresh.value("l1_hits") == 1
        b.close()

    def test_lineage_pull_and_memoization(self, tmp_path, server):
        a = TieredCache(ResultCache(str(tmp_path / "a")),
                        backend_from_url(server.url), MetricsRegistry())
        _seed_l1(a, key="vk1", lineage="lin1")
        _seed_l1(a, key="vk2", lineage="lin1")
        assert a.flush()
        a.close()

        registry = MetricsRegistry()
        b = TieredCache(ResultCache(str(tmp_path / "b")),
                        backend_from_url(server.url), registry)
        assert b.has_lineage("lin1")
        assert registry.value("l2_hits") == 2   # both siblings adopted
        commands = server.commands
        assert b.has_lineage("lin1")            # memoized: no new pull
        assert server.commands == commands
        assert not b.has_lineage("lin-unknown")
        b.close()

    def test_meta_reads_through(self, tmp_path, server):
        a = TieredCache(ResultCache(str(tmp_path / "a")),
                        backend_from_url(server.url), MetricsRegistry())
        _seed_l1(a)
        assert a.flush()
        a.close()
        b = TieredCache(ResultCache(str(tmp_path / "b")),
                        backend_from_url(server.url), MetricsRegistry())
        assert b.meta("vk1").profile_digest == "pd"
        assert b.meta("absent") is None
        b.close()

    def test_invalidate_deletes_remote_bundle(self, tmp_path, server):
        cache = TieredCache(ResultCache(str(tmp_path)),
                            backend_from_url(server.url),
                            MetricsRegistry())
        _seed_l1(cache)
        assert cache.flush()
        assert any(":bundle:" in k for k in server.strings)
        cache.invalidate("vk1")
        assert not any(":bundle:" in k for k in server.strings)
        assert cache.lookup("vk1") is None
        cache.close()

    def test_prune_is_l1_only(self, tmp_path, server):
        cache = TieredCache(ResultCache(str(tmp_path)),
                            backend_from_url(server.url),
                            MetricsRegistry())
        _seed_l1(cache)
        assert cache.flush()
        assert cache.prune([]) == 1
        assert cache.keys() == []
        # The fleet-shared remote keeps serving other daemons.
        assert any(":bundle:" in k for k in server.strings)
        cache.close()


# -- failure modes ------------------------------------------------------------

class _BlockingBackend(CacheBackend):
    """A backend whose writes park until released — makes write-behind
    queue pressure deterministic."""

    def __init__(self):
        self.release = threading.Event()
        self.puts = []

    def get(self, key):
        return None

    def put(self, key, value):
        self.release.wait(timeout=10.0)
        self.puts.append(key)

    def delete(self, key):
        pass

    def sadd(self, key, member):
        pass

    def smembers(self, key):
        return ()

    def ping(self):
        return True

    def close(self):
        self.release.set()


class TestDegradation:
    def test_refused_connect_degrades_to_l1(self, tmp_path):
        dead = FakeRespServer().start()
        url = dead.url
        dead.stop()  # the port now refuses connections
        registry = MetricsRegistry()
        cache = TieredCache(ResultCache(str(tmp_path)),
                            backend_from_url(url, timeout_s=0.5),
                            registry, reconnect_s=60.0)
        _seed_l1(cache)
        assert cache.flush()  # queued publish attempts, fails, drops
        assert registry.value("l2_writes_dropped") == 1
        assert cache.lookup("vk1") is not None   # L1 serves
        assert cache.lookup("vk-cold") is None   # L2 probe fails quietly
        assert registry.value("l2_errors") >= 1
        assert registry.value("l2_errors", type="connect") >= 1
        assert registry.value("l2_degraded") == 1
        # Cooling down: later probes short-circuit without touching
        # the socket, and degraded-path writes are dropped at enqueue.
        errors = registry.value("l2_errors")
        assert cache.lookup("vk-cold2") is None
        assert registry.value("l2_errors") == errors
        _seed_l1(cache, key="vk2")
        assert registry.value("l2_writes_dropped") == 2
        cache.close()

    def test_accept_then_close_degrades(self, tmp_path, server):
        server.refuse_connections = True
        registry = MetricsRegistry()
        cache = TieredCache(ResultCache(str(tmp_path)),
                            backend_from_url(server.url, timeout_s=0.5),
                            registry)
        assert cache.lookup("anything") is None
        assert registry.value("l2_errors") >= 1
        cache.close()

    def test_mid_request_disconnect_degrades(self, tmp_path, server):
        registry = MetricsRegistry()
        cache = TieredCache(ResultCache(str(tmp_path)),
                            backend_from_url(server.url, timeout_s=0.5),
                            registry, reconnect_s=60.0)
        _seed_l1(cache)
        assert cache.flush()
        server.drop_after_requests = server.commands  # sever from now on
        assert cache.lookup("vk-cold") is None
        assert registry.value("l2_errors", type="connect") >= 1
        assert cache.lookup("vk1") is not None   # L1 still serves
        cache.close()

    def test_slow_reply_past_deadline_degrades(self, tmp_path, server):
        server.response_delay_s = 1.0
        registry = MetricsRegistry()
        cache = TieredCache(ResultCache(str(tmp_path)),
                            backend_from_url(server.url, timeout_s=0.2),
                            registry, reconnect_s=60.0)
        started = time.perf_counter()
        assert cache.lookup("vk-cold") is None
        assert time.perf_counter() - started < 0.9
        assert registry.value("l2_errors", type="timeout") >= 1
        assert registry.value("l2_degraded") == 1
        cache.close()

    def test_recovery_after_cooldown(self, tmp_path, server):
        registry = MetricsRegistry()
        backend = backend_from_url(server.url, timeout_s=0.5)
        cache = TieredCache(ResultCache(str(tmp_path)), backend,
                            registry, reconnect_s=0.05)
        _seed_l1(cache)
        assert cache.flush()
        port = server.port
        server.stop()
        cache._pulled_lineages.clear()
        assert cache.lookup("vk-cold") is None
        assert registry.value("l2_degraded") == 1
        revived = FakeRespServer(port=port).start()
        try:
            time.sleep(0.1)  # past the cooldown
            assert cache.lookup("vk-cold") is None  # miss, but served
            assert registry.value("l2_misses") >= 1
            assert registry.value("l2_degraded") == 0
        finally:
            cache.close()
            revived.stop()

    def test_write_behind_overflow_sheds_oldest(self, tmp_path):
        registry = MetricsRegistry()
        backend = _BlockingBackend()
        cache = TieredCache(ResultCache(str(tmp_path)), backend,
                            registry, max_queue=2)
        for i in range(5):
            _seed_l1(cache, key=f"vk{i}")
        backend.release.set()
        assert cache.flush()
        # One write was in flight; the queue held 2; the rest shed.
        assert registry.value("l2_writes_shed") == 2
        assert registry.value("l2_writes") == 3
        # Oldest-dropped: the newest key always survives.
        assert any(k.endswith(":bundle:vk4") for k in backend.puts)
        cache.close()

    def test_corrupt_remote_payload_is_a_miss(self, tmp_path, server):
        registry = MetricsRegistry()
        cache = TieredCache(ResultCache(str(tmp_path)),
                            backend_from_url(server.url), registry)
        server.strings[cache._bundle_key("vk-bad")] = b"{not json"
        server.strings[cache._bundle_key("vk-wrong")] = b'{"v": 7}'
        assert cache.lookup("vk-bad") is None
        assert cache.lookup("vk-wrong") is None
        assert registry.value("l2_errors", type="payload") == 1
        assert registry.value("l2_hits") == 0
        cache.close()


# -- L1 hardening -------------------------------------------------------------

class TestL1Contention:
    def test_busy_timeout_is_set(self, tmp_path):
        with ResultCache(str(tmp_path)) as cache:
            timeout, = cache._conn.execute("PRAGMA busy_timeout").fetchone()
            assert timeout == ResultCache.BUSY_TIMEOUT_MS

    def test_lock_retry_succeeds_and_counts(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(str(tmp_path), registry=registry)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise sqlite3.OperationalError("database is locked")
            return 42

        assert cache._with_retry(flaky) == 42
        assert registry.value("l1_lock_retries") == 1
        cache.close()

    def test_second_lock_failure_raises(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(str(tmp_path), registry=registry)

        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            cache._with_retry(always_locked)
        assert registry.value("l1_lock_retries") == 1
        cache.close()

    def test_non_lock_errors_are_not_retried(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        attempts = []

        def broken():
            attempts.append(1)
            raise sqlite3.OperationalError("no such table: nope")

        with pytest.raises(sqlite3.OperationalError):
            cache._with_retry(broken)
        assert len(attempts) == 1
        cache.close()

    def test_cross_process_shape_write_write(self, tmp_path):
        # Two connections to one database file (what two daemons
        # sharing a cache_dir look like): both stores land.
        a = ResultCache(str(tmp_path))
        b = ResultCache(str(tmp_path))
        _seed_l1(a, key="vk-a")
        _seed_l1(b, key="vk-b")
        assert set(a.keys()) == {"vk-a", "vk-b"}
        a.close()
        b.close()


# -- service integration ------------------------------------------------------

class TestServiceIntegration:
    def test_l2_requires_l1(self):
        with pytest.raises(ValueError):
            DependenceService(ServiceConfig(workers=0, executor="inline",
                                            cache_l2="redis://h:1"))

    def test_fleet_shares_warm_answers(self, tmp_path, server):
        request = _request()
        with DependenceService(_config(tmp_path / "a",
                                       server.url)) as svc_a:
            cold = svc_a.run_batch([request])
            assert svc_a.cache.flush()
            assert svc_a.snapshot().l2_writes >= 1
        reset_prepared_cache()
        with DependenceService(_config(tmp_path / "b",
                                       server.url)) as svc_b:
            warm = svc_b.run_batch([request])
            snap = svc_b.snapshot()
        assert all(a.status == STATUS_CACHED for a in warm.flat())
        assert snap.l2_hits >= 1
        assert snap.module_evals == 0
        assert identities(warm.flat()) == identities(cold.flat())

    def test_incremental_probe_pulls_lineage_from_l2(self, tmp_path,
                                                     server):
        with DependenceService(_config(tmp_path / "a",
                                       server.url)) as svc_a:
            cold = svc_a.run_batch([_request(step=1)])
            assert svc_a.cache.flush()
        reset_prepared_cache()
        # A *different* host sees an edited module: the exact key
        # misses everywhere, but the lineage set pulls the prior
        # version's bundle and the footprints revalidate.
        edited = _request(step=1, extra="global @pad : i32 = 7\n")
        with DependenceService(_config(tmp_path / "b",
                                       server.url)) as svc_b:
            warm = svc_b.run_batch([edited])
            snap = svc_b.snapshot()
        assert all(a.status == STATUS_CACHED for a in warm.flat())
        assert snap.l2_hits >= 1
        assert snap.loops_incremental == len(warm.flat())
        assert snap.module_evals == 0
        assert identities(warm.flat()) == identities(cold.flat())

    def test_dead_l2_never_fails_a_query(self, tmp_path):
        dead = FakeRespServer().start()
        url = dead.url
        dead.stop()
        config = _config(tmp_path, url, l2_timeout_s=0.3)
        with DependenceService(config) as service:
            batch = service.run_batch([_request()])
            snap = service.snapshot()
        assert batch.flat()
        assert all(a.status != STATUS_FALLBACK for a in batch.flat())
        assert snap.l2_errors >= 1
        with DependenceService(_config(tmp_path / "plain")) as baseline:
            expected = baseline.run_batch([_request()])
        assert identities(batch.flat()) == identities(expected.flat())

    def test_report_renders_tier_line(self, tmp_path, server):
        from repro.service import format_report
        with DependenceService(_config(tmp_path, server.url)) as service:
            service.run_batch([_request()])
            report = format_report(service.snapshot())
        assert "cache tiers" in report
        assert "L2" in report


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(step=st.sampled_from((1, 3)),
       system=st.sampled_from(("caf", "scaf")))
def test_property_l2_answers_identical(step, system):
    """The contract: attaching a remote tier never changes an answer —
    byte-identical with L2 on vs. off, cold and warm."""
    import tempfile
    request = AnalysisRequest("prop", SOURCE.format(step=step, extra=""),
                              system=system)
    reset_prepared_cache()
    with DependenceService(
            _config(tempfile.mkdtemp(prefix="scaf-l2off-"))) as plain:
        expected = plain.run_batch([request])
    with FakeRespServer() as server:
        reset_prepared_cache()
        with DependenceService(_config(
                tempfile.mkdtemp(prefix="scaf-l2a-"),
                server.url)) as svc_a:
            cold = svc_a.run_batch([request])
            assert svc_a.cache.flush()
        reset_prepared_cache()
        with DependenceService(_config(
                tempfile.mkdtemp(prefix="scaf-l2b-"),
                server.url)) as svc_b:
            warm = svc_b.run_batch([request])
    assert identities(cold.flat()) == identities(expected.flat())
    assert identities(warm.flat()) == identities(expected.flat())
