"""Tests for the command-line interface."""

import pytest

from repro.cli import main

PROGRAM = """
global @flag : i32 = 0
global @acc : i32 = 0
global @hits : i32 = 0

func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %latch]
  %f = load i32* @flag
  %c = icmp ne i32 %f, 0
  condbr i1 %c, %rare, %common
rare:
  store i32 1, i32* @hits
  br %join
common:
  br %join
join:
  %a = load i32* @acc
  %a2 = add i32 %a, %i
  store i32 %a2, i32* @acc
  br %latch
latch:
  %i2 = add i32 %i, 1
  %lc = icmp slt i32 %i2, 60
  condbr i1 %lc, %loop, %exit
exit:
  %r = load i32* @acc
  ret i32 %r
}
"""


@pytest.fixture
def program(tmp_path):
    path = tmp_path / "program.ir"
    path.write_text(PROGRAM)
    return str(path)


class TestRun:
    def test_executes_and_prints_result(self, program, capsys):
        assert main(["run", program]) == 0
        out = capsys.readouterr().out
        assert f"result: {sum(range(60))}" in out
        assert "instructions executed" in out


class TestFmt:
    def test_round_trips(self, program, capsys, tmp_path):
        assert main(["fmt", program]) == 0
        out = capsys.readouterr().out
        # The printed form must itself parse and verify.
        from repro.ir import parse_module, verify_module
        verify_module(parse_module(out))

    def test_bad_file_raises(self, tmp_path):
        bad = tmp_path / "bad.ir"
        bad.write_text("func @broken( {")
        with pytest.raises(Exception):
            main(["fmt", str(bad)])


class TestProfile:
    def test_reports_hot_loops_and_dead_blocks(self, program, capsys):
        assert main(["profile", program]) == 0
        out = capsys.readouterr().out
        assert "hot loops (1)" in out
        assert "@main:%loop" in out
        assert "profile-dead blocks in @main: %rare" in out
        assert "predictable loads" in out


class TestAnalyze:
    def test_scaf_coverage(self, program, capsys):
        assert main(["analyze", program]) == 0
        out = capsys.readouterr().out
        assert "%NoDep" in out
        assert "[scaf]" in out

    def test_system_selection(self, program, capsys):
        assert main(["analyze", program, "--system", "caf"]) == 0
        out = capsys.readouterr().out
        assert "[caf]" in out

    def test_deps_listing(self, program, capsys):
        assert main(["analyze", program, "--deps", "--all"]) == 0
        out = capsys.readouterr().out
        assert "[DEP" in out or "[removed" in out

    def test_scaf_beats_caf_here(self, program, capsys):
        main(["analyze", program, "--system", "caf"])
        caf_out = capsys.readouterr().out
        main(["analyze", program, "--system", "scaf"])
        scaf_out = capsys.readouterr().out

        def nodep(text):
            import re
            return float(re.search(r"%NoDep = ([\d.]+)", text).group(1))

        assert nodep(scaf_out) >= nodep(caf_out)

    def test_no_hot_loops_exit_code(self, tmp_path, capsys):
        trivial = tmp_path / "trivial.ir"
        trivial.write_text("""
func @main() -> i32 {
entry:
  ret i32 0
}
""")
        assert main(["analyze", str(trivial)]) == 1
        assert "no hot loops" in capsys.readouterr().out
