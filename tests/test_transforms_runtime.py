"""Unit tests for the speculation runtime (§4.2.1 validation checks)."""

import pytest

from repro.interp import SimulatedMemory
from repro.transforms.runtime import Misspeculation, SpeculationRuntime


class _FakeInterp:
    """Just enough interpreter for object_at-based checks."""

    def __init__(self):
        self.memory = SimulatedMemory()


class TestValueCheck:
    def test_match_is_silent(self):
        rt = SpeculationRuntime()
        rt.check_value(7, 7)
        assert rt.checks_executed == 1
        assert rt.misspeculations == 0

    def test_mismatch_triggers(self):
        rt = SpeculationRuntime()
        with pytest.raises(Misspeculation, match="value-prediction"):
            rt.check_value(8, 7)
        assert rt.misspeculations == 1

    def test_float_values(self):
        rt = SpeculationRuntime()
        rt.check_value(2.5, 2.5)
        with pytest.raises(Misspeculation):
            rt.check_value(2.5, 2.6)


class TestResidueCheck:
    def test_allowed_residues(self):
        rt = SpeculationRuntime()
        mask = (1 << 0) | (1 << 8)
        rt.check_residue(0x1000, mask)      # residue 0
        rt.check_residue(0x1008, mask)      # residue 8
        assert rt.misspeculations == 0

    def test_disallowed_residue_triggers(self):
        rt = SpeculationRuntime()
        mask = 1 << 0
        with pytest.raises(Misspeculation, match="pointer-residue"):
            rt.check_residue(0x1004, mask)  # residue 4


class TestSeparationChecks:
    def _setup(self):
        rt = SpeculationRuntime()
        interp = _FakeInterp()
        anchor = object()
        obj = interp.memory.allocate(64, "heap", site=anchor)
        rt.separated_sites[1] = anchor
        rt.note_alloc(obj)
        return rt, interp, obj

    def test_member_check(self):
        rt, interp, obj = self._setup()
        rt.check_separated(interp, obj.base + 8, 1)   # inside: fine
        with pytest.raises(Misspeculation, match="separation"):
            other = interp.memory.allocate(8, "heap", site=object())
            rt.check_separated(interp, other.base, 1)

    def test_foreign_check(self):
        rt, interp, obj = self._setup()
        other = interp.memory.allocate(8, "heap", site=object())
        rt.check_not_separated(interp, other.base, 1)  # outside: fine
        with pytest.raises(Misspeculation, match="separation"):
            rt.check_not_separated(interp, obj.base, 1)

    def test_iteration_empty(self):
        rt, interp, obj = self._setup()
        with pytest.raises(Misspeculation, match="short-lived"):
            rt.check_iteration_empty(1)
        rt.misspeculations = 0
        rt.note_free(obj)
        rt.check_iteration_empty(1)  # freed: silent
        assert rt.misspeculations == 0

    def test_untracked_site_objects_ignored(self):
        rt, interp, obj = self._setup()
        stray = interp.memory.allocate(8, "heap", site=object())
        rt.note_alloc(stray)  # not a registered anchor
        assert stray.serial not in rt.separated_live.get(1, set())


class TestShadowChecks:
    def test_intra_iteration_overlap(self):
        rt = SpeculationRuntime()
        rt.shadow_source(1, 100, 4)
        with pytest.raises(Misspeculation, match="memory-speculation"):
            rt.shadow_sink(1, 102, 4, cross_iteration=False)

    def test_intra_iteration_disjoint(self):
        rt = SpeculationRuntime()
        rt.shadow_source(1, 100, 4)
        rt.shadow_sink(1, 104, 4, cross_iteration=False)
        assert rt.misspeculations == 0

    def test_intra_reset_clears(self):
        rt = SpeculationRuntime()
        rt.shadow_source(1, 100, 4)
        rt.shadow_iteration_boundary(1, cross_iteration=False)
        rt.shadow_sink(1, 100, 4, cross_iteration=False)
        assert rt.misspeculations == 0

    def test_cross_iteration_requires_epoch(self):
        rt = SpeculationRuntime()
        rt.shadow_source(2, 200, 8)
        # Same iteration: a cross-iteration assertion ignores it.
        rt.shadow_sink(2, 200, 8, cross_iteration=True)
        assert rt.misspeculations == 0
        # After the back edge the source bytes become "earlier".
        rt.shadow_iteration_boundary(2, cross_iteration=True)
        with pytest.raises(Misspeculation):
            rt.shadow_sink(2, 200, 8, cross_iteration=True)

    def test_assertions_have_independent_shadows(self):
        rt = SpeculationRuntime()
        rt.shadow_source(1, 100, 4)
        rt.shadow_sink(2, 100, 4, cross_iteration=False)
        assert rt.misspeculations == 0

    def test_shadow_cost_scales_with_size(self):
        rt = SpeculationRuntime()
        rt.shadow_source(1, 0, 64)
        assert rt.checks_executed == 64  # per-byte work (Figure 7b)
