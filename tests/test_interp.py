"""Tests for the IR interpreter: semantics, memory model, loop tracking."""

import pytest

from repro.interp import Interpreter, InterpreterError, MemoryFault
from repro.ir import parse_module


def run(text, entry="main", args=()):
    m = parse_module(text)
    interp = Interpreter(m)
    result = interp.run(entry, args)
    return result, interp


class TestArithmetic:
    def test_basic_math(self):
        result, _ = run("""
func @main() -> i32 {
entry:
  %a = add i32 10, 5
  %b = mul i32 %a, 3
  %c = sub i32 %b, 1
  %d = sdiv i32 %c, 2
  ret i32 %d
}
""")
        assert result == 22

    def test_wrapping(self):
        result, _ = run("""
func @main() -> i8 {
entry:
  %a = add i8 127, 1
  ret i8 %a
}
""")
        assert result == -128

    def test_signed_division_truncates_toward_zero(self):
        result, _ = run("""
func @main() -> i32 {
entry:
  %a = sdiv i32 -7, 2
  ret i32 %a
}
""")
        assert result == -3

    def test_srem(self):
        result, _ = run("""
func @main() -> i32 {
entry:
  %a = srem i32 -7, 3
  ret i32 %a
}
""")
        assert result == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpreterError, match="division"):
            run("""
func @main() -> i32 {
entry:
  %a = sdiv i32 1, 0
  ret i32 %a
}
""")

    def test_float_math(self):
        result, _ = run("""
func @main() -> f64 {
entry:
  %a = fadd f64 1.5, 2.5
  %b = fmul f64 %a, 2.0
  ret f64 %b
}
""")
        assert result == 8.0

    def test_shifts(self):
        result, _ = run("""
func @main() -> i32 {
entry:
  %a = shl i32 1, 10
  %b = ashr i32 %a, 2
  ret i32 %b
}
""")
        assert result == 256

    def test_select(self):
        result, _ = run("""
func @main() -> i32 {
entry:
  %c = icmp slt i32 1, 2
  %v = select i1 %c, i32 10, i32 20
  ret i32 %v
}
""")
        assert result == 10


class TestMemory:
    def test_alloca_store_load(self):
        result, _ = run("""
func @main() -> i32 {
entry:
  %p = alloca i32
  store i32 99, i32* %p
  %v = load i32* %p
  ret i32 %v
}
""")
        assert result == 99

    def test_global_initializers(self):
        result, _ = run("""
global @x : i32 = 7
const global @tab : [3 x i32] = [10, 20, 30]
func @main() -> i32 {
entry:
  %a = load i32* @x
  %p = gep [3 x i32]* @tab, i64 0, i64 2
  %b = load i32* %p
  %s = add i32 %a, %b
  ret i32 %s
}
""")
        assert result == 37

    def test_struct_fields(self):
        result, _ = run("""
struct %pair { i32, i64 }
func @main() -> i64 {
entry:
  %p = alloca %pair
  %f0 = gep %pair* %p, i64 0, i64 0
  store i32 3, i32* %f0
  %f1 = gep %pair* %p, i64 0, i64 1
  store i64 1000, i64* %f1
  %v = load i64* %f1
  ret i64 %v
}
""")
        assert result == 1000

    def test_malloc_free(self):
        result, _ = run("""
declare @malloc(i64) -> i8*
declare @free(i8*) -> void
func @main() -> i32 {
entry:
  %raw = call @malloc(i64 8)
  %p = bitcast i8* %raw to i32*
  store i32 5, i32* %p
  %v = load i32* %p
  call @free(i8* %raw)
  ret i32 %v
}
""")
        assert result == 5

    def test_use_after_free_faults(self):
        with pytest.raises(MemoryFault):
            run("""
declare @malloc(i64) -> i8*
declare @free(i8*) -> void
func @main() -> i32 {
entry:
  %raw = call @malloc(i64 8)
  %p = bitcast i8* %raw to i32*
  call @free(i8* %raw)
  %v = load i32* %p
  ret i32 %v
}
""")

    def test_double_free_faults(self):
        with pytest.raises(MemoryFault, match="double free"):
            run("""
declare @malloc(i64) -> i8*
declare @free(i8*) -> void
func @main() -> i32 {
entry:
  %raw = call @malloc(i64 8)
  call @free(i8* %raw)
  call @free(i8* %raw)
  ret i32 0
}
""")

    def test_out_of_bounds_faults(self):
        with pytest.raises(MemoryFault):
            run("""
declare @malloc(i64) -> i8*
func @main() -> i32 {
entry:
  %raw = call @malloc(i64 4)
  %p = bitcast i8* %raw to i32*
  %q = gep i32* %p, i64 1
  %v = load i32* %q
  ret i32 %v
}
""")

    def test_memcpy_memset(self):
        result, _ = run("""
declare @malloc(i64) -> i8*
declare @memcpy(i8*, i8*, i64) -> i8*
declare @memset(i8*, i32, i64) -> i8*
func @main() -> i32 {
entry:
  %a = call @malloc(i64 8)
  %b = call @malloc(i64 8)
  %r = call @memset(i8* %a, i32 65, i64 8)
  %r2 = call @memcpy(i8* %b, i8* %a, i64 8)
  %bp = bitcast i8* %b to i8*
  %v = load i8* %bp
  %v32 = sext i8 %v to i32
  ret i32 %v32
}
""")
        assert result == 65

    def test_stack_released_on_return(self):
        _, interp = run("""
func @helper() -> i32* {
entry:
  %p = alloca i32
  store i32 1, i32* %p
  ret i32* %p
}
func @main() -> i32 {
entry:
  %p = call @helper()
  ret i32 0
}
""")
        # The helper's alloca must be dead after return.
        dead = [o for b, o in interp.memory._objects.items()
                if o.kind == "stack"]
        assert dead and all(not o.live for o in dead)


class TestControlFlowAndCalls:
    def test_loop_sum(self):
        result, _ = run("""
func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %acc = phi i32 [0, %entry], [%acc2, %loop]
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 10
  condbr i1 %c, %loop, %out
out:
  ret i32 %acc2
}
""")
        assert result == sum(range(10))

    def test_parallel_phi_copy(self):
        """Classic swap through phis must read old values."""
        result, _ = run("""
func @main() -> i32 {
entry:
  br %loop
loop:
  %a = phi i32 [1, %entry], [%b, %loop]
  %b = phi i32 [2, %entry], [%a, %loop]
  %i = phi i32 [0, %entry], [%i2, %loop]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 3
  condbr i1 %c, %loop, %out
out:
  %r = mul i32 %a, 10
  %r2 = add i32 %r, %b
  ret i32 %r2
}
""")
        # Two back edges swap (a,b): (1,2)->(2,1)->(1,2).  A sequential
        # (non-parallel) phi copy would collapse both to the same value.
        assert result == 12

    def test_switch(self):
        result, _ = run("""
func @main() -> i32 {
entry:
  switch i32 2, %dflt [1: %one, 2: %two]
one:
  ret i32 100
two:
  ret i32 200
dflt:
  ret i32 300
}
""")
        assert result == 200

    def test_recursion(self):
        result, _ = run("""
func @fact(i32 %n) -> i32 {
entry:
  %c = icmp sle i32 %n, 1
  condbr i1 %c, %base, %rec
base:
  ret i32 1
rec:
  %n1 = sub i32 %n, 1
  %r = call @fact(i32 %n1)
  %p = mul i32 %n, %r
  ret i32 %p
}
func @main() -> i32 {
entry:
  %r = call @fact(i32 6)
  ret i32 %r
}
""")
        assert result == 720

    def test_unreachable_raises(self):
        with pytest.raises(InterpreterError, match="unreachable"):
            run("""
func @main() -> i32 {
entry:
  unreachable
}
""")

    def test_step_limit(self):
        m = parse_module("""
func @main() -> i32 {
entry:
  br %spin
spin:
  br %spin
}
""")
        interp = Interpreter(m, max_steps=1000)
        with pytest.raises(InterpreterError, match="step limit"):
            interp.run()

    def test_missing_entry(self):
        m = parse_module(SIMPLE_EMPTY)
        interp = Interpreter(m)
        with pytest.raises(InterpreterError, match="no function"):
            interp.run("nope")

    def test_exit_builtin(self):
        result, interp = run("""
declare @exit(i32) -> void
func @main() -> i32 {
entry:
  call @exit(i32 3)
  ret i32 0
}
""")
        assert result == 3
        assert interp.exit_code == 3


SIMPLE_EMPTY = """
func @main() -> i32 {
entry:
  ret i32 0
}
"""


class TestLoopTracking:
    def test_stats(self):
        _, interp = run("""
func @main() -> i32 {
entry:
  br %outer
outer:
  %i = phi i32 [0, %entry], [%i2, %outer.latch]
  br %inner
inner:
  %j = phi i32 [0, %outer], [%j2, %inner]
  %j2 = add i32 %j, 1
  %jc = icmp slt i32 %j2, 5
  condbr i1 %jc, %inner, %outer.latch
outer.latch:
  %i2 = add i32 %i, 1
  %ic = icmp slt i32 %i2, 3
  condbr i1 %ic, %outer, %exit
exit:
  ret i32 0
}
""")
        stats = {l.header.name: s for l, s in interp.loop_stats.items()}
        assert stats["outer"].invocations == 1
        assert stats["outer"].iterations == 3
        assert stats["inner"].invocations == 3
        assert stats["inner"].iterations == 15
        assert stats["inner"].average_trip_count == 5.0
        assert stats["inner"].dynamic_insts > 0

    def test_instruction_attribution(self):
        _, interp = run("""
func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 10
  condbr i1 %c, %loop, %out
out:
  ret i32 0
}
""")
        loop_stats = next(iter(interp.loop_stats.values()))
        # Loop body is 3 executed instructions (phi is not re-executed)
        # per iteration after the first, plus the first iteration.
        assert loop_stats.dynamic_insts >= 30
        assert loop_stats.dynamic_insts <= interp.total_instructions()
