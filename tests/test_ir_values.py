"""Tests for IR values: constants, globals, null, undef."""

import pytest

from repro.ir import (
    ArrayType,
    Constant,
    F64,
    GlobalVariable,
    I1,
    I32,
    I8,
    NullPointer,
    PointerType,
    UndefValue,
    const_float,
    const_int,
    null,
)
from repro.ir.values import _wrap_int


class TestWrapInt:
    def test_in_range_unchanged(self):
        assert _wrap_int(5, 32) == 5
        assert _wrap_int(-5, 32) == -5

    def test_wraps_overflow(self):
        assert _wrap_int(2**31, 32) == -(2**31)
        assert _wrap_int(2**32, 32) == 0
        assert _wrap_int(255, 8) == -1
        assert _wrap_int(128, 8) == -128

    def test_i1(self):
        assert _wrap_int(1, 1) == 1
        assert _wrap_int(2, 1) == 0
        assert _wrap_int(3, 1) == 1


class TestConstant:
    def test_int_wrapping_at_construction(self):
        assert Constant(I8, 300).value == 44
        assert Constant(I32, -1).value == -1

    def test_float(self):
        c = const_float(2.5)
        assert c.value == 2.5
        assert c.type == F64

    def test_int_to_float_type_coerces(self):
        assert Constant(F64, 3).value == 3.0

    def test_rejects_aggregate(self):
        with pytest.raises(TypeError):
            Constant(ArrayType(I32, 2), 0)

    def test_ref_is_literal(self):
        assert const_int(42).ref == "42"
        assert const_float(1.5).ref == "1.5"

    def test_equality_and_hash(self):
        assert const_int(7) == const_int(7)
        assert const_int(7) != const_int(8)
        assert const_int(7, 32) != const_int(7, 64)
        assert hash(const_int(7)) == hash(const_int(7))


class TestNullAndUndef:
    def test_null_ref(self):
        n = null(I32)
        assert n.ref == "null"
        assert n.type == PointerType(I32)

    def test_null_equality(self):
        assert null(I32) == null(I32)
        assert null(I32) != null(I8)

    def test_undef_ref(self):
        assert UndefValue(I32, "").ref == "undef"


class TestGlobalVariable:
    def test_type_is_pointer_to_storage(self):
        g = GlobalVariable("g", I32, 5)
        assert g.type == PointerType(I32)
        assert g.value_type == I32
        assert g.initializer == 5

    def test_ref(self):
        assert GlobalVariable("counter", I32).ref == "@counter"

    def test_const_flag(self):
        assert GlobalVariable("t", I32, 0, is_constant=True).is_constant
        assert not GlobalVariable("t2", I32).is_constant
