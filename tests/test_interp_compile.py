"""Differential tests for the closure-compiled execution engine.

The tree-walking ``Interpreter`` is the oracle: every test here runs
both engines and demands identical observable behavior — return
values, step counts, loop statistics, and every profiler fact.  The
width-semantics regressions (udiv/urem/lshr) and float corners
(frem by zero, 0/0) are pinned in both engines.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import AnalysisContext
from repro.interp import (
    CompiledInterpreter,
    CompiledModule,
    CompileError,
    Interpreter,
    cached_compiled_module,
    compilation_enabled,
    compile_module,
    make_interpreter,
    set_compilation_enabled,
)
from repro.ir import parse_module
from repro.profiling import run_profilers
from repro.workloads import ALL_WORKLOADS, WORKLOADS


def _run_tree(text, entry="main", args=()):
    interp = Interpreter(parse_module(text))
    return interp.run(entry, args), interp


def _run_compiled(text, entry="main", args=()):
    module = parse_module(text)
    analysis = AnalysisContext(module)
    interp = CompiledInterpreter(module, analysis)
    return interp.run(entry, args), interp


ENGINES = pytest.mark.parametrize(
    "run", [_run_tree, _run_compiled], ids=["tree", "compiled"])


# ---------------------------------------------------------------------------
# Satellite: unsigned integer semantics at the operand type's width.
# ---------------------------------------------------------------------------

def _binop(op, ty, a, b):
    return f"""
func @main() -> {ty} {{
entry:
  %r = {op} {ty} {a}, {b}
  ret {ty} %r
}}
"""


class TestUnsignedWidthSemantics:
    """udiv/urem reinterpret both operands at the type's width (the
    old ``abs()`` was wrong for every negative value); lshr zero-
    extends at the type's width (the old 64-bit mask shifted bogus
    one bits into narrower types)."""

    @ENGINES
    @pytest.mark.parametrize("ty,a,b,expected", [
        # -6 as u8 is 250; 250 // 2 = 125.  abs() gave 3.
        ("i8", -6, 2, 125),
        # -2 as u32 is 2**32 - 2; halved = 2**31 - 1.
        ("i32", -2, 2, 2**31 - 1),
        ("i64", -2, 2, 2**63 - 1),
    ])
    def test_udiv(self, run, ty, a, b, expected):
        result, _ = run(_binop("udiv", ty, a, b))
        assert result == expected

    @ENGINES
    @pytest.mark.parametrize("ty,a,b,expected", [
        # -1 as u8 is 255; 255 % 16 = 15.  abs() gave 1.
        ("i8", -1, 16, 15),
        ("i32", -1, 10, (2**32 - 1) % 10),
        ("i64", -1, 10, (2**64 - 1) % 10),
    ])
    def test_urem(self, run, ty, a, b, expected):
        result, _ = run(_binop("urem", ty, a, b))
        assert result == expected

    @ENGINES
    @pytest.mark.parametrize("ty,a,b,expected", [
        # -1 as u8 is 255; >> 1 = 127.  The 64-bit mask gave -1.
        ("i8", -1, 1, 127),
        ("i32", -1, 1, 2**31 - 1),
        ("i64", -1, 1, 2**63 - 1),
        # Shift amounts mask at the type's width, not 64 bits.
        ("i8", 1, 8, 1),
        ("i32", 7, 32, 7),
    ])
    def test_lshr(self, run, ty, a, b, expected):
        result, _ = run(_binop("lshr", ty, a, b))
        assert result == expected

    @ENGINES
    @pytest.mark.parametrize("op", ["udiv", "urem"])
    def test_zero_divisor_yields_zero(self, run, op):
        result, _ = run(_binop(op, "i32", 7, 0))
        assert result == 0


# ---------------------------------------------------------------------------
# Satellite: float corners — deterministic NaN, never an exception.
# ---------------------------------------------------------------------------

class TestFloatCorners:
    @ENGINES
    def test_frem_zero_divisor_is_nan(self, run):
        result, _ = run(_binop("frem", "f64", 1.5, 0.0))
        assert math.isnan(result)

    @ENGINES
    def test_fdiv_zero_over_zero_is_nan(self, run):
        result, _ = run(_binop("fdiv", "f64", 0.0, 0.0))
        assert math.isnan(result)

    @ENGINES
    def test_fdiv_nonzero_over_zero_is_signed_inf(self, run):
        pos, _ = run(_binop("fdiv", "f64", 2.0, 0.0))
        neg, _ = run(_binop("fdiv", "f64", -2.0, 0.0))
        assert pos == math.inf and neg == -math.inf


# ---------------------------------------------------------------------------
# Engine selection plumbing.
# ---------------------------------------------------------------------------

_TRIVIAL = """
func @main() -> i32 {
entry:
  ret i32 42
}
"""


class TestEngineSelection:
    def test_make_interpreter_explicit_choice(self):
        module = parse_module(_TRIVIAL)
        assert isinstance(make_interpreter(module, compile=True),
                          CompiledInterpreter)
        tree = make_interpreter(module, compile=False)
        assert not isinstance(tree, CompiledInterpreter)

    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_COMPILE", "1")
        assert not compilation_enabled()
        module = parse_module(_TRIVIAL)
        assert not isinstance(make_interpreter(module),
                              CompiledInterpreter)
        monkeypatch.setenv("REPRO_NO_COMPILE", "0")
        assert compilation_enabled()

    def test_forced_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_COMPILE", "1")
        set_compilation_enabled(True)
        try:
            assert compilation_enabled()
        finally:
            set_compilation_enabled(None)
        assert not compilation_enabled()

    def test_compile_error_falls_back_to_tree(self, monkeypatch):
        import repro.interp.compile as compile_mod

        def boom(module, analysis=None):
            raise CompileError("forced")

        monkeypatch.setattr(compile_mod, "compile_module", boom)
        interp = compile_mod.make_interpreter(parse_module(_TRIVIAL),
                                              compile=True)
        assert not isinstance(interp, CompiledInterpreter)
        assert interp.run("main") == 42

    def test_compiled_module_cached_on_analysis(self):
        module = parse_module(_TRIVIAL)
        analysis = AnalysisContext(module)
        first = compile_module(module, analysis)
        assert isinstance(first, CompiledModule)
        assert compile_module(module, analysis) is first
        assert cached_compiled_module(analysis) is first

    def test_prepared_module_pins_compiled_artifact(self):
        from repro.ir import format_module
        from repro.service.requests import AnalysisRequest
        from repro.service.worker import PreparedModule

        workload = ALL_WORKLOADS[0]
        request = AnalysisRequest(workload.name,
                                  format_module(workload.build()))
        prepared = PreparedModule(request)
        assert isinstance(prepared.compiled, CompiledModule)
        assert cached_compiled_module(prepared.context) \
            is prepared.compiled

    def test_cli_no_compile_flag_sets_env(self, monkeypatch, tmp_path):
        import os
        from repro.cli import main

        monkeypatch.delenv("REPRO_NO_COMPILE", raising=False)
        path = tmp_path / "p.ir"
        path.write_text(_TRIVIAL)
        assert main(["run", str(path), "--no-compile"]) == 0
        assert os.environ.get("REPRO_NO_COMPILE") == "1"
        monkeypatch.delenv("REPRO_NO_COMPILE", raising=False)


# ---------------------------------------------------------------------------
# Differential fuzz: compiled == tree on randomized programs.
# ---------------------------------------------------------------------------

_INT_OP_NAMES = ["add", "sub", "mul", "udiv", "urem", "and", "or",
                 "xor", "lshr", "ashr", "sdiv", "srem"]
_WIDTHS = ["i8", "i16", "i32", "i64"]
_CONST = st.integers(min_value=-40, max_value=40)


def _fuzz_program(ops, consts, width, trips, branch_const):
    """A counted loop whose body applies a randomized chain of binary
    ops, with a data-dependent diamond to exercise branch plans."""
    body = []
    prev = "%acc"
    for i, (op, c) in enumerate(zip(ops, consts)):
        # Divisors of 0 are legal (defined as 0 for unsigned, but
        # sdiv/srem raise), so keep signed divisors away from zero.
        if op in ("sdiv", "srem") and c == 0:
            c = 3
        body.append(f"  %t{i} = {op} {width} {prev}, {c}")
        prev = f"%t{i}"
    body_text = "\n".join(body)
    return f"""
func @main() -> {width} {{
entry:
  br %header
header:
  %i = phi i64 [0, %entry], [%i2, %latch]
  %acc = phi {width} [1, %entry], [%accn, %latch]
{body_text}
  %parity = and i64 %i, 1
  %odd = icmp eq i64 %parity, 1
  condbr i1 %odd, %odd_bb, %even_bb
odd_bb:
  %vo = add {width} {prev}, {branch_const}
  br %latch
even_bb:
  %ve = xor {width} {prev}, {branch_const}
  br %latch
latch:
  %accn = phi {width} [%vo, %odd_bb], [%ve, %even_bb]
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, {trips}
  condbr i1 %c, %header, %exit
exit:
  ret {width} %accn
}}
"""


class TestDifferentialFuzz:
    @given(ops=st.lists(st.sampled_from(_INT_OP_NAMES),
                        min_size=1, max_size=6),
           consts=st.lists(_CONST, min_size=6, max_size=6),
           width=st.sampled_from(_WIDTHS),
           trips=st.integers(min_value=1, max_value=12),
           branch_const=_CONST)
    @settings(max_examples=60, deadline=None)
    def test_engines_agree(self, ops, consts, width, trips,
                           branch_const):
        text = _fuzz_program(ops, consts, width, trips, branch_const)
        module_t = parse_module(text)
        module_c = parse_module(text)

        tree = Interpreter(module_t)
        tree_err = None
        try:
            tree_ret = tree.run("main")
        except Exception as exc:  # division by zero is legal output
            tree_err = type(exc).__name__
            tree_ret = None

        comp = CompiledInterpreter(module_c)
        comp_err = None
        try:
            comp_ret = comp.run("main")
        except Exception as exc:
            comp_err = type(exc).__name__
            comp_ret = None

        assert comp_err == tree_err
        assert _same_scalar(comp_ret, tree_ret)
        if tree_err is None:
            assert comp.total_instructions() == \
                tree.total_instructions()
            assert _norm_loop_stats(comp) == _norm_loop_stats(tree)

    @given(ops=st.lists(st.sampled_from(_INT_OP_NAMES),
                        min_size=1, max_size=4),
           consts=st.lists(_CONST, min_size=4, max_size=4),
           width=st.sampled_from(_WIDTHS),
           trips=st.integers(min_value=1, max_value=8),
           branch_const=_CONST)
    @settings(max_examples=25, deadline=None)
    def test_profile_facts_agree(self, ops, consts, width, trips,
                                 branch_const):
        text = _fuzz_program(ops, consts, width, trips, branch_const)
        facts = []
        for compile_ in (False, True):
            module = parse_module(text)
            context = AnalysisContext(module)
            try:
                bundle = run_profilers(module, context,
                                       compile=compile_)
            except Exception as exc:
                facts.append(("error", type(exc).__name__))
                continue
            facts.append(_normalize_bundle(bundle))
        assert facts[0] == facts[1]


def _same_scalar(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return (a == b) or (a != a and b != b)
    return a == b


def _norm_loop_stats(interp):
    return {loop.header.name: (s.invocations, s.iterations,
                               s.dynamic_insts)
            for loop, s in interp.loop_stats.items()}


# ---------------------------------------------------------------------------
# Full-workload equality sweep: every profiler fact, all 16 programs.
# ---------------------------------------------------------------------------

def _bkey(block):
    fn = block.parent
    return (fn.name if fn is not None else "", block.name)


def _ikey(value):
    from repro.profiling.sites import _value_position
    return _value_position(value)


def _skey(site):
    from repro.profiling.sites import site_order_key
    return site_order_key(site)


def _scalar(v):
    if isinstance(v, float) and v != v:
        return "nan"
    return v


def _normalize_bundle(bundle):
    """Collapse a ProfileBundle to comparable plain data, keyed by
    stable IR positions rather than object identity (so bundles from
    two separately-built copies of one module compare equal)."""
    edge = bundle.edge
    value = bundle.value
    pt = bundle.points_to
    life = bundle.lifetime
    return {
        "ret": _scalar(bundle.exit_value),
        "steps": bundle.total_instructions,
        "loops": {_bkey(loop.header): (s.invocations, s.iterations,
                                       s.dynamic_insts)
                  for loop, s in bundle.loop_stats.items()},
        "edges": {(_bkey(f), _bkey(t)): n
                  for (f, t), n in edge.edge_counts.items()},
        "blocks": {_bkey(b): n for b, n in edge.block_counts.items()},
        "values": {_ikey(i): (n, _scalar(value.constant_value.get(i)))
                   for i, n in value.counts.items()},
        "points_to": {_ikey(p): sorted(_skey(s) for s in sites)
                      for p, sites in pt.points_to.items()},
        "escaped": sorted(_ikey(p) for p, flag in pt.escaped.items()
                          if flag),
        "site_access": {
            _bkey(loop.header): {_skey(site): (c.reads, c.writes)
                                 for site, c in sites.items()}
            for loop, sites in pt.loop_site_access.items()},
        "residues": {_ikey(p): (tuple(sorted(rs)),
                                bundle.residue.counts.get(p))
                     for p, rs in bundle.residue.residues.items()},
        "lifetime": {
            "allocating": {_bkey(l.header): sorted(map(_skey, ss))
                           for l, ss in life.allocating_sites.items()},
            "disqualified": {_bkey(l.header): sorted(map(_skey, ss))
                             for l, ss in life.disqualified.items()},
            "alloc_counts": {_bkey(l.header): n
                             for l, n in life.alloc_counts.items()},
        },
        "memdep": {
            _bkey(loop.header): sorted(
                (_ikey(src), _ikey(dst), cross)
                for (src, dst, cross) in deps)
            for loop, deps in bundle.memdep.observed.items()},
    }


@pytest.mark.parametrize("name", [w.name for w in ALL_WORKLOADS])
def test_workload_profile_facts_identical(name):
    module_t = WORKLOADS[name].build()
    module_c = WORKLOADS[name].build()
    tree = run_profilers(module_t, AnalysisContext(module_t),
                         compile=False)
    comp = run_profilers(module_c, AnalysisContext(module_c),
                         compile=True)
    assert tree.engine == "tree"
    assert comp.engine == "compiled"
    assert _normalize_bundle(comp) == _normalize_bundle(tree)
