"""Tests for CFG utilities: orderings, reachability, back edges."""

import pytest

from repro.analysis import (
    back_edges,
    is_reachable,
    reachable_blocks,
    reverse_postorder,
)
from repro.ir import parse_module


DIAMOND = """
func @f(i1 %c) -> i32 {
entry:
  condbr i1 %c, %left, %right
left:
  br %join
right:
  br %join
join:
  ret i32 0
}
"""

LOOP = """
func @f() -> i32 {
entry:
  br %header
header:
  %i = phi i32 [0, %entry], [%i2, %body]
  %c = icmp slt i32 %i, 10
  condbr i1 %c, %body, %exit
body:
  %i2 = add i32 %i, 1
  br %header
exit:
  ret i32 %i
}
"""


def _fn(text):
    return next(iter(parse_module(text).defined_functions))


class TestReversePostorder:
    def test_entry_first(self):
        fn = _fn(DIAMOND)
        order = reverse_postorder(fn)
        assert order[0].name == "entry"
        assert order[-1].name == "join"

    def test_all_reachable_blocks_present(self):
        fn = _fn(DIAMOND)
        assert len(reverse_postorder(fn)) == 4

    def test_ignore_set_prunes(self):
        fn = _fn(DIAMOND)
        left = fn.get_block("left")
        order = reverse_postorder(fn, ignore=frozenset({left}))
        names = [b.name for b in order]
        assert "left" not in names
        assert "join" in names  # still reachable via right

    def test_loop_order(self):
        fn = _fn(LOOP)
        order = [b.name for b in reverse_postorder(fn)]
        assert order.index("entry") < order.index("header")
        assert order.index("header") < order.index("exit")


class TestReachability:
    def test_forward(self):
        fn = _fn(DIAMOND)
        assert is_reachable(fn.get_block("entry"), fn.get_block("join"))
        assert not is_reachable(fn.get_block("left"), fn.get_block("right"))

    def test_reflexive_by_default(self):
        fn = _fn(DIAMOND)
        e = fn.get_block("entry")
        assert is_reachable(e, e)
        assert not is_reachable(e, e, exclude_start=True)

    def test_cycle_with_exclude_start(self):
        fn = _fn(LOOP)
        h = fn.get_block("header")
        assert is_reachable(h, h, exclude_start=True)

    def test_ignore_blocks_path(self):
        fn = _fn(DIAMOND)
        left = fn.get_block("left")
        right = fn.get_block("right")
        entry = fn.get_block("entry")
        join = fn.get_block("join")
        assert not is_reachable(entry, join,
                                ignore=frozenset({left, right}))

    def test_reachable_blocks(self):
        fn = _fn(LOOP)
        blocks = {b.name for b in reachable_blocks(fn)}
        assert blocks == {"entry", "header", "body", "exit"}


class TestBackEdges:
    def test_loop_back_edge(self):
        fn = _fn(LOOP)
        edges = back_edges(fn)
        assert len(edges) == 1
        tail, head = edges[0]
        assert tail.name == "body"
        assert head.name == "header"

    def test_acyclic_has_none(self):
        fn = _fn(DIAMOND)
        assert back_edges(fn) == []
