"""Tests for the speculation modules (§4.2) on profiled crafted IR."""

import pytest

from repro.analysis import AnalysisContext
from repro.core import NullResolver, Orchestrator, OrchestratorConfig
from repro.ir import parse_module
from repro.modules.memory import BasicAA, KillFlowAA, default_memory_modules
from repro.modules.speculation import (
    ControlSpeculation,
    MemorySpeculation,
    MODULE_CONTROL,
    MODULE_POINTS_TO,
    MODULE_READ_ONLY,
    MODULE_RESIDUE,
    MODULE_SHORT_LIVED,
    MODULE_VALUE_PRED,
    MemorySpeculation,
    PointerResidue,
    PointsToSpeculation,
    ReadOnly,
    ShortLived,
    ValuePrediction,
    replace_points_to_assertions,
)
from repro.profiling import run_profilers
from repro.query import (
    AliasQuery,
    AliasResult,
    CFGView,
    MemoryLocation,
    ModRefQuery,
    ModRefResult,
    OptionSet,
    PROHIBITIVE_COST,
    SpeculativeAssertion,
    TemporalRelation,
)

NULL = NullResolver()


def setup(text):
    m = parse_module(text)
    ctx = AnalysisContext(m)
    profiles = run_profilers(m, ctx)
    fn = m.get_function("main")
    values = {i.name: i for f in m.defined_functions
              for i in f.instructions() if i.name}
    loops = ctx.loop_info(fn)
    return m, ctx, profiles, fn, values, loops


BIASED = """
global @flag : i32 = 0
global @a : i32 = 0
global @b : i32 = 0
global @hits : i32 = 0

func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %latch]
  %f = load i32* @flag
  %c = icmp ne i32 %f, 0
  condbr i1 %c, %rare, %common
rare:
  store i32 1, i32* @hits
  br %join
common:
  store i32 %i, i32* @a
  br %join
join:
  %av = load i32* @a
  store i32 %av, i32* @b
  %i2 = add i32 %i, 1
  store i32 %i2, i32* @a
  br %latch
latch:
  %lc = icmp slt i32 %i2, 30
  condbr i1 %lc, %loop, %exit
exit:
  ret i32 0
}
"""


class TestControlSpeculation:
    def test_dead_endpoint_resolves(self):
        m, ctx, p, fn, v, loops = setup(BIASED)
        cs = ControlSpeculation(ctx, p)
        loop = loops.loops[0]
        dead_store = next(i for i in fn.get_block("rare").instructions
                          if i.opcode == "store")
        live_load = v["av"]
        q = ModRefQuery(dead_store, TemporalRelation.SAME, live_load,
                        loop, (), CFGView.static(ctx, fn))
        r = cs.modref(q, NULL)
        assert r.result is ModRefResult.NO_MOD_REF
        assert r.options.modules_involved() == {MODULE_CONTROL}
        assert r.cost() == 0.0

    def test_speculative_view_prunes_dead_blocks(self):
        m, ctx, p, fn, v, loops = setup(BIASED)
        cs = ControlSpeculation(ctx, p)
        view = cs.speculative_view(fn)
        assert view is not None
        assert view.is_speculative
        assert not view.is_live(fn.get_block("rare"))
        # In the pruned CFG, 'common' dominates 'join'.
        common_store = next(i for i in fn.get_block("common").instructions
                            if i.opcode == "store")
        assert view.dominates(common_store, v["av"])

    def test_collaboration_with_killflow(self):
        """The full motivating-example flow (Figure 6)."""
        m, ctx, p, fn, v, loops = setup(BIASED)
        loop = loops.loops[0]
        orch = Orchestrator(
            [BasicAA(ctx, p), KillFlowAA(ctx, p),
             ControlSpeculation(ctx, p)],
            OrchestratorConfig(use_cache=False))
        i3 = [i for i in fn.get_block("join").instructions
              if i.opcode == "store"][-1]
        q = ModRefQuery(i3, TemporalRelation.BEFORE, v["av"], loop, (),
                        CFGView.static(ctx, fn))
        r = orch.handle(q)
        assert r.result is ModRefResult.NO_MOD_REF
        assert MODULE_CONTROL in r.options.modules_involved()
        assert {"control-spec", "kill-flow-aa"} <= orch.last_contributors

    def test_no_dead_blocks_no_view(self):
        m, ctx, p, fn, v, loops = setup("""
global @x : i32 = 0
func @main() -> i32 {
entry:
  store i32 1, i32* @x
  ret i32 0
}
""")
        cs = ControlSpeculation(ctx, p)
        assert cs.speculative_view(fn) is None


class TestValuePrediction:
    SOURCE = """
global @cfg : i32 = 7
global @data : i32 = 0
func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %c = load i32* @cfg
  %d = load i32* @data
  %sum = add i32 %d, %c
  store i32 %sum, i32* @data
  %i2 = add i32 %i, 1
  %lc = icmp slt i32 %i2, 10
  condbr i1 %lc, %loop, %exit
exit:
  ret i32 0
}
"""

    def test_predictable_endpoint_removed(self):
        m, ctx, p, fn, v, loops = setup(self.SOURCE)
        vp = ValuePrediction(ctx, p)
        loop = loops.loops[0]
        store = next(i for i in fn.instructions() if i.opcode == "store")
        q = ModRefQuery(store, TemporalRelation.BEFORE, v["c"], loop, ())
        r = vp.modref(q, NULL)
        assert r.result is ModRefResult.NO_MOD_REF
        assert r.options.modules_involved() == {MODULE_VALUE_PRED}
        assert 0 < r.cost() < PROHIBITIVE_COST

    def test_unpredictable_endpoint_kept(self):
        m, ctx, p, fn, v, loops = setup(self.SOURCE)
        vp = ValuePrediction(ctx, p)
        loop = loops.loops[0]
        store = next(i for i in fn.instructions() if i.opcode == "store")
        q = ModRefQuery(store, TemporalRelation.BEFORE, v["d"], loop, ())
        r = vp.modref(q, NULL)
        assert r.result is ModRefResult.MOD_REF


class TestPointerResidue:
    SOURCE = """
declare @malloc(i64) -> i8*
global @pairs : f64* = zeroinit
func @main() -> i32 {
entry:
  %raw = call @malloc(i64 256)
  %base = bitcast i8* %raw to f64*
  store f64* %base, f64** @pairs
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i2, %loop]
  %p = load f64** @pairs
  %e.i = mul i64 %i, 2
  %o.i = add i64 %e.i, 1
  %e.slot = gep f64* %p, i64 %e.i
  %ev = load f64* %e.slot
  %o.slot = gep f64* %p, i64 %o.i
  store f64 %ev, f64* %o.slot
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 16
  condbr i1 %c, %loop, %exit
exit:
  ret i32 0
}
"""

    def test_disjoint_residues_no_alias(self):
        m, ctx, p, fn, v, loops = setup(self.SOURCE)
        pr = PointerResidue(ctx, p)
        q = AliasQuery(MemoryLocation(v["ev"].pointer, 8),
                       TemporalRelation.SAME,
                       MemoryLocation(v["o.slot"], 8),
                       loops.loops[0])
        r = pr.alias(q, NULL)
        assert r.result is AliasResult.NO_ALIAS
        assert r.options.modules_involved() == {MODULE_RESIDUE}

    def test_must_alias_desire_bails(self):
        m, ctx, p, fn, v, loops = setup(self.SOURCE)
        pr = PointerResidue(ctx, p)
        q = AliasQuery(MemoryLocation(v["e.slot"], 8),
                       TemporalRelation.SAME,
                       MemoryLocation(v["o.slot"], 8),
                       loops.loops[0], desired=AliasResult.MUST_ALIAS)
        assert pr.alias(q, NULL).result is AliasResult.MAY_ALIAS


SEPARATION = """
global @ro_ptr : f64* = zeroinit
global @w_ptr : f64* = zeroinit
declare @malloc(i64) -> i8*
declare @free(i8*) -> void
func @main() -> i32 {
entry:
  %ro.raw = call @malloc(i64 544)
  %ro.f = bitcast i8* %ro.raw to f64*
  %ro.base = gep f64* %ro.f, i64 2
  store f64* %ro.base, f64** @ro_ptr
  %w.raw = call @malloc(i64 544)
  %w.f = bitcast i8* %w.raw to f64*
  %w.base = gep f64* %w.f, i64 2
  store f64* %w.base, f64** @w_ptr
  br %fill
fill:
  %fi = phi i64 [0, %entry], [%fi2, %fill]
  %f.slot = gep f64* %ro.base, i64 %fi
  %fif = sitofp i64 %fi to f64
  store f64 %fif, f64* %f.slot
  %fi2 = add i64 %fi, 1
  %fc = icmp slt i64 %fi2, 64
  condbr i1 %fc, %fill, %loop.head
loop.head:
  br %loop
loop:
  %i = phi i64 [0, %loop.head], [%i2, %loop]
  %tmp.raw = call @malloc(i64 16)
  %tmp = bitcast i8* %tmp.raw to f64*
  %ro = load f64** @ro_ptr
  %r.slot = gep f64* %ro, i64 %i
  %rv = load f64* %r.slot
  store f64 %rv, f64* %tmp
  %tv = load f64* %tmp
  %w = load f64** @w_ptr
  %w.slot = gep f64* %w, i64 %i
  store f64 %tv, f64* %w.slot
  call @free(i8* %tmp.raw)
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 64
  condbr i1 %c, %loop, %exit
exit:
  ret i32 0
}
"""


class TestPointsToSpeculation:
    def test_disjoint_sites_prohibitive_no_alias(self):
        m, ctx, p, fn, v, loops = setup(SEPARATION)
        pts = PointsToSpeculation(ctx, p)
        loop = next(l for l in loops.loops if l.header.name == "loop")
        q = AliasQuery(MemoryLocation(v["r.slot"], 8),
                       TemporalRelation.SAME,
                       MemoryLocation(v["w.slot"], 8), loop)
        r = pts.alias(q, NULL)
        assert r.result is AliasResult.NO_ALIAS
        assert r.cost() >= PROHIBITIVE_COST

    def test_anchor_containment_subalias(self):
        m, ctx, p, fn, v, loops = setup(SEPARATION)
        pts = PointsToSpeculation(ctx, p)
        loop = next(l for l in loops.loops if l.header.name == "loop")
        q = AliasQuery(MemoryLocation(v["r.slot"], 8),
                       TemporalRelation.SAME,
                       MemoryLocation(v["ro.raw"], 544), loop)
        r = pts.alias(q, NULL)
        assert r.result is AliasResult.SUB_ALIAS


class TestReadOnly:
    def test_write_vs_read_only_object(self):
        m, ctx, p, fn, v, loops = setup(SEPARATION)
        loop = next(l for l in loops.loops if l.header.name == "loop")
        orch = Orchestrator(
            [ReadOnly(ctx, p), PointsToSpeculation(ctx, p)],
            OrchestratorConfig(use_cache=False))
        w_store = next(i for i in fn.get_block("loop").instructions
                       if i.opcode == "store" and i.pointer.name == "w.slot")
        q = ModRefQuery(w_store, TemporalRelation.SAME, v["rv"], loop, ())
        r = orch.handle(q)
        assert r.result is ModRefResult.NO_MOD_REF
        # Points-to assertion must have been replaced by the cheap
        # read-only heap check (§4.2.3).
        mods = r.options.modules_involved()
        assert MODULE_READ_ONLY in mods
        assert MODULE_POINTS_TO not in mods
        assert r.cost() < PROHIBITIVE_COST

    def test_isolated_read_only_fails_without_points_to(self):
        m, ctx, p, fn, v, loops = setup(SEPARATION)
        loop = next(l for l in loops.loops if l.header.name == "loop")
        ro = ReadOnly(ctx, p)
        w_store = next(i for i in fn.get_block("loop").instructions
                       if i.opcode == "store" and i.pointer.name == "w.slot")
        q = ModRefQuery(w_store, TemporalRelation.SAME, v["rv"], loop, ())
        r = ro.modref(q, NULL)
        assert r.result is ModRefResult.MOD_REF


class TestShortLived:
    def test_cross_iteration_scratch_removed(self):
        m, ctx, p, fn, v, loops = setup(SEPARATION)
        loop = next(l for l in loops.loops if l.header.name == "loop")
        orch = Orchestrator(
            [ShortLived(ctx, p), PointsToSpeculation(ctx, p)],
            OrchestratorConfig(use_cache=False))
        tmp_store = next(i for i in fn.get_block("loop").instructions
                         if i.opcode == "store" and i.pointer.name == "tmp")
        q = ModRefQuery(tmp_store, TemporalRelation.BEFORE, v["tv"],
                        loop, ())
        r = orch.handle(q)
        assert r.result is ModRefResult.NO_MOD_REF
        mods = r.options.modules_involved()
        assert MODULE_SHORT_LIVED in mods
        assert MODULE_POINTS_TO not in mods

    def test_intra_iteration_not_removed(self):
        m, ctx, p, fn, v, loops = setup(SEPARATION)
        loop = next(l for l in loops.loops if l.header.name == "loop")
        orch = Orchestrator(
            [ShortLived(ctx, p), PointsToSpeculation(ctx, p)],
            OrchestratorConfig(use_cache=False))
        tmp_store = next(i for i in fn.get_block("loop").instructions
                         if i.opcode == "store" and i.pointer.name == "tmp")
        q = ModRefQuery(tmp_store, TemporalRelation.SAME, v["tv"], loop, ())
        r = orch.handle(q)
        assert r.result is not ModRefResult.NO_MOD_REF

    def test_conflict_points_are_allocation_sites(self):
        m, ctx, p, fn, v, loops = setup(SEPARATION)
        loop = next(l for l in loops.loops if l.header.name == "loop")
        sl = ShortLived(ctx, p)
        sites = sl._sites(loop)
        assert len(sites) == 1
        site = next(iter(sites))
        assertion = sl._assertion(site, (), 1.0, "t")
        assert site.anchor in assertion.conflict_points


class TestMemorySpeculation:
    def test_unobserved_dependence_removed_expensively(self):
        m, ctx, p, fn, v, loops = setup(SEPARATION)
        loop = next(l for l in loops.loops if l.header.name == "loop")
        ms = MemorySpeculation(ctx, p)
        w_store = next(i for i in fn.get_block("loop").instructions
                       if i.opcode == "store" and i.pointer.name == "w.slot")
        q = ModRefQuery(w_store, TemporalRelation.SAME, v["rv"], loop, ())
        r = ms.modref(q, NULL)
        assert r.result is ModRefResult.NO_MOD_REF
        # Expensive: scales with both instructions' execution counts.
        assert r.cost() >= 30.0 * 2 * 64

    def test_observed_dependence_kept(self):
        m, ctx, p, fn, v, loops = setup(SEPARATION)
        loop = next(l for l in loops.loops if l.header.name == "loop")
        ms = MemorySpeculation(ctx, p)
        tmp_store = next(i for i in fn.get_block("loop").instructions
                         if i.opcode == "store" and i.pointer.name == "tmp")
        q = ModRefQuery(tmp_store, TemporalRelation.SAME, v["tv"], loop, ())
        assert ms.modref(q, NULL).result is ModRefResult.MOD_REF

    def test_unexecuted_loop_not_speculated(self):
        m, ctx, p, fn, v, loops = setup("""
global @x : i32 = 0
global @n : i32 = 0
func @main() -> i32 {
entry:
  %n.v = load i32* @n
  %c = icmp sgt i32 %n.v, 0
  condbr i1 %c, %loop, %exit
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %v = load i32* @x
  store i32 %v, i32* @x
  %i2 = add i32 %i, 1
  %lc = icmp slt i32 %i2, %n.v
  condbr i1 %lc, %loop, %exit
exit:
  ret i32 0
}
""")
        loop = loops.loops[0]
        ms = MemorySpeculation(ctx, p)
        load = v["v"]
        store = next(i for i in fn.get_block("loop").instructions
                     if i.opcode == "store")
        q = ModRefQuery(store, TemporalRelation.BEFORE, load, loop, ())
        assert ms.modref(q, NULL).result is ModRefResult.MOD_REF


class TestAssertionReplacement:
    def test_replace_points_to(self):
        pts = SpeculativeAssertion(MODULE_POINTS_TO, cost=PROHIBITIVE_COST)
        other = SpeculativeAssertion(MODULE_CONTROL, cost=0.0)
        mine = SpeculativeAssertion(MODULE_READ_ONLY, cost=2.0)
        options = OptionSet([frozenset({pts, other})])
        replaced = replace_points_to_assertions(options, mine)
        assert len(replaced.options) == 1
        option = next(iter(replaced.options))
        assert mine in option
        assert other in option
        assert pts not in option
