"""Integration tests over the 16 synthetic SPEC-like workloads.

These are the heavyweight tests: every workload is parsed, verified,
profiled, and analyzed by all four systems, checking the paper's
structural claims (§5.1) and the high-confidence soundness invariant.
"""

import pytest

from repro import (
    build_caf,
    build_confluence,
    build_memory_speculation,
    build_scaf,
)
from repro.clients import PDGClient, hot_loops, weighted_no_dep
from repro.workloads import (
    ALL_WORKLOADS,
    CONFLUENCE_SATURATED,
    WORKLOADS,
    get_workload,
    prepare,
)


@pytest.fixture(scope="module", params=[w.name for w in ALL_WORKLOADS])
def prepared(request):
    return prepare(get_workload(request.param))


class TestWorkloadStructure:
    def test_registry_complete(self):
        assert len(ALL_WORKLOADS) == 16
        assert len(WORKLOADS) == 16
        assert CONFLUENCE_SATURATED <= set(WORKLOADS)

    def test_builds_and_verifies(self, prepared):
        assert prepared.module.defined_functions

    def test_executes_to_completion(self, prepared):
        assert prepared.profiles.exit_value == 0
        assert prepared.profiles.total_instructions > 1000

    def test_has_hot_loops(self, prepared):
        hot = hot_loops(prepared.profiles)
        assert hot, f"{prepared.name} has no hot loops"
        for h in hot:
            assert h.time_fraction >= 0.10
            assert h.stats.average_trip_count >= 50

    def test_has_memory_dependence_queries(self, prepared):
        hot = hot_loops(prepared.profiles)
        caf = build_caf(prepared.module, prepared.context, prepared.profiles)
        pdg = PDGClient(caf).analyze_loop(hot[0].loop)
        assert pdg.total_queries >= 50


class TestPaperStructuralClaims:
    @pytest.fixture(scope="class")
    def coverage(self):
        """%NoDep of every system on every workload (computed once)."""
        results = {}
        for wl in ALL_WORKLOADS:
            p = prepare(wl)
            hot = hot_loops(p.profiles)
            per_system = {}
            for name, system in (
                ("caf", build_caf(p.module, p.context, p.profiles)),
                ("conf", build_confluence(p.module, p.profiles, p.context)),
                ("scaf", build_scaf(p.module, p.profiles, p.context)),
                ("memspec", build_memory_speculation(
                    p.module, p.profiles, p.context)),
            ):
                client = PDGClient(system)
                pdgs = [client.analyze_loop(h.loop) for h in hot]
                per_system[name] = weighted_no_dep(hot, pdgs)
            results[wl.name] = per_system
        return results

    def test_speculation_monotonicity(self, coverage):
        """CAF <= confluence <= SCAF on every benchmark (Figure 8)."""
        for name, r in coverage.items():
            assert r["caf"] <= r["conf"] + 1e-9, name
            assert r["conf"] <= r["scaf"] + 1e-9, name

    def test_memory_speculation_upper_bounds_scaf(self, coverage):
        for name, r in coverage.items():
            assert r["scaf"] <= r["memspec"] + 1e-9, name

    def test_scaf_strictly_better_on_non_saturated(self, coverage):
        """SCAF outperforms confluence wherever collaboration has room
        (12 of 16 benchmarks; §5.1)."""
        for name, r in coverage.items():
            if name not in CONFLUENCE_SATURATED:
                assert r["scaf"] > r["conf"], name

    def test_saturated_benchmarks_show_no_gap(self, coverage):
        for name in CONFLUENCE_SATURATED:
            r = coverage[name]
            assert r["scaf"] == pytest.approx(r["conf"], abs=0.5), name

    def test_scaf_shrinks_memory_speculation_residual(self, coverage):
        """The headline claim: SCAF dramatically reduces what is left
        for expensive memory speculation."""
        conf_gap = sum(r["memspec"] - r["conf"] for r in coverage.values())
        scaf_gap = sum(r["memspec"] - r["scaf"] for r in coverage.values())
        assert scaf_gap < conf_gap * 0.75


class TestSoundness:
    def test_no_removed_dependence_was_observed(self, prepared):
        """All four systems only remove dependences that never
        manifested during the training run."""
        p = prepared
        hot = hot_loops(p.profiles)
        systems = [
            build_caf(p.module, p.context, p.profiles),
            build_confluence(p.module, p.profiles, p.context),
            build_scaf(p.module, p.profiles, p.context),
            build_memory_speculation(p.module, p.profiles, p.context),
        ]
        for system in systems:
            client = PDGClient(system)
            for h in hot:
                observed = p.profiles.memdep.observed_pairs(h.loop)
                pdg = client.analyze_loop(h.loop)
                for record in pdg.records:
                    if record.removed:
                        key = (record.src, record.dst,
                               record.cross_iteration)
                        assert key not in observed, (
                            f"{system.name} removed an observed dependence "
                            f"in {h.name}: {record.src} -> {record.dst}")

    def test_free_results_never_observed(self, prepared):
        """Cost-free (purely static) no-dependence results are sound
        against the dynamic trace by construction."""
        p = prepared
        hot = hot_loops(p.profiles)
        caf = build_caf(p.module, p.context, p.profiles)
        client = PDGClient(caf)
        for h in hot:
            observed = p.profiles.memdep.observed_pairs(h.loop)
            pdg = client.analyze_loop(h.loop)
            for record in pdg.records:
                if record.removed and record.usable_options.is_free:
                    key = (record.src, record.dst, record.cross_iteration)
                    assert key not in observed
