"""Queue-mode scheduler tests: the loop-granular global work queue,
the worker-resident prepared-module cache, crash recovery, and the
zero-interpretation roster-reuse fast path.

Shard-mode behavior (and the queue/shard shared plumbing: dedup,
cache probe, degradation counters) is covered in test_service.py;
this file pins what is *specific* to the queue rewrite:

- queue mode and legacy shard mode return identical answers on all
  four systems (property test);
- a worker death mid-queue degrades only the dead task's loop, the
  executor is rebuilt, and the rest of the queue completes;
- K loop tasks of one module on one worker pay module setup
  (parse + verify + profile) exactly once;
- prepared-cache hits are not re-billed setup time, and the
  busy/setup split reconciles;
- a provably-execution-preserving edit reuses the prior hot-loop
  roster with zero interpretation;
- the traced queue timeline nests loop tasks under dispatch spans
  with queue-wait and prepared-cache attributes.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.service.scheduler as scheduler_mod
import repro.service.worker as worker_mod
from repro.obs.stats import trace_document
from repro.obs.trace import NOOP, TraceContext, set_tracer, validate_spans
from repro.service import (
    AnalysisRequest,
    BatchScheduler,
    ResultCache,
    STATUS_CACHED,
    STATUS_COMPUTED,
    STATUS_FALLBACK,
    prepared_cache_keys,
    reset_prepared_cache,
    run_loop_task,
)

SYSTEMS = ("caf", "confluence", "scaf", "memory-speculation")


@pytest.fixture(autouse=True)
def _fresh_prepared_cache():
    reset_prepared_cache()
    yield
    reset_prepared_cache()
    set_tracer(NOOP)


def two_loop_source(step1: int = 1, step2: int = 1,
                    dead_step: int = 1) -> str:
    """Two hot loops in separate functions, plus ``@dead`` which is
    defined but never called — editing it provably preserves the
    training run."""
    return f"""
global @acc1 : i32 = 0
global @acc2 : i32 = 0

func @dead(i32 %x) -> i32 {{
entry:
  %y = add i32 %x, {dead_step}
  ret i32 %y
}}

func @work1() -> i32 {{
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %a = load i32* @acc1
  %a2 = add i32 %a, {step1}
  store i32 %a2, i32* @acc1
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 60
  condbr i1 %c, %loop, %exit
exit:
  %r = load i32* @acc1
  ret i32 %r
}}

func @work2() -> i32 {{
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %a = load i32* @acc2
  %a2 = add i32 %a, {step2}
  store i32 %a2, i32* @acc2
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 80
  condbr i1 %c, %loop, %exit
exit:
  %r = load i32* @acc2
  ret i32 %r
}}

func @main() -> i32 {{
entry:
  %x = call @work1()
  %y = call @work2()
  %s = add i32 %x, %y
  ret i32 %s
}}
"""


def identities(answer_lists):
    return [[a.identity() for a in answers] for answers in answer_lists]


# -- queue mode == shard mode (the correctness gate) -------------------------

class TestQueueShardEquivalence:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(system=st.sampled_from(SYSTEMS),
           step1=st.integers(min_value=1, max_value=3),
           step2=st.integers(min_value=1, max_value=3),
           dup=st.booleans())
    def test_property_queue_equals_shard(self, system, step1, step2, dup):
        """For every analysis system and module shape, the global work
        queue returns the same answers (loop for loop, pair for pair)
        as the legacy per-request shard fan-out."""
        requests = [AnalysisRequest(
            "q", two_loop_source(step1=step1, step2=step2), system=system)]
        if dup:
            requests.append(requests[0])

        reset_prepared_cache()
        queue_sched = BatchScheduler(workers=0, executor="inline",
                                     mode="queue")
        queued = queue_sched.run_batch(requests)
        assert queue_sched.telemetry.snapshot().loop_tasks_dispatched > 0

        reset_prepared_cache()
        shard_sched = BatchScheduler(workers=0, executor="inline",
                                     mode="shard")
        sharded = shard_sched.run_batch(requests)
        assert shard_sched.telemetry.snapshot().shards_dispatched > 0

        assert identities(queued) == identities(sharded)


# -- crash recovery ----------------------------------------------------------

class TestCrashAndRebuild:
    def test_worker_death_mid_queue_degrades_one_loop(self):
        """Kill the worker on one specific loop task: that loop falls
        back conservatively, the executor is rebuilt, and every other
        task in the queue still completes with real answers."""
        crashed = []
        lock = threading.Lock()

        def flaky_runner(task):
            if task.loop is not None and task.loop.startswith("@work2"):
                with lock:
                    first = not crashed
                    crashed.append((task.request.name, task.loop))
                if first:
                    raise RuntimeError("simulated worker death")
            return run_loop_task(task)

        scheduler = BatchScheduler(workers=2, executor="thread",
                                   mode="queue", loop_runner=flaky_runner)
        first_executor = scheduler_mod._make_executor  # sanity: importable
        assert first_executor is not None
        requests = [
            AnalysisRequest("victim", two_loop_source(), system="scaf"),
            AnalysisRequest("bystander", two_loop_source(step1=2),
                            system="caf"),
        ]
        results = scheduler.run_batch(requests)
        scheduler.close()

        assert crashed, "the injected crash never fired"
        # The deterministic (key, loop) tie-break decides which
        # request's @work2 dispatches first — whichever it was, only
        # that one loop degrades.
        hit = 0 if crashed[0][0] == "victim" else 1
        by_loop = {a.loop: a for a in results[hit]}
        assert by_loop["@work2:%loop"].status == STATUS_FALLBACK
        assert by_loop["@work2:%loop"].no_dep_percent == 0.0
        assert by_loop["@work1:%loop"].status == STATUS_COMPUTED
        # The other request rode the same global queue and was
        # untouched by the crash.
        assert all(a.status == STATUS_COMPUTED for a in results[1 - hit])
        snap = scheduler.telemetry.snapshot()
        assert snap.shards_failed == 1
        assert snap.loops_fallback == 1
        # The crashed worker slot was replaced (a fresh worker drained
        # the remaining queue).
        assert snap.fleet_rebuilds == 1

    def test_discovery_death_degrades_whole_request(self):
        """If the roster was never discovered, the conservative
        fallback covers the request's unknown demand."""
        def dead_runner(task):
            raise RuntimeError("worker never came up")

        scheduler = BatchScheduler(workers=1, executor="thread",
                                   mode="queue", loop_runner=dead_runner)
        [answers] = scheduler.run_batch(
            [AnalysisRequest("doomed", two_loop_source(), system="scaf")])
        scheduler.close()
        assert answers, "degraded request must still answer"
        assert all(a.status == STATUS_FALLBACK for a in answers)


# -- prepared-module cache ---------------------------------------------------

class TestPreparedModuleCache:
    def test_module_setup_paid_once_for_all_loop_tasks(self, monkeypatch):
        """The acceptance criterion: a module split across K loop
        tasks on one worker is parsed / verified / profiled exactly
        once — the discovery task populates the prepared cache and
        every loop task hits it."""
        profiled = []
        real_profilers = worker_mod.run_profilers
        monkeypatch.setattr(
            worker_mod, "run_profilers",
            lambda *a, **k: profiled.append(1) or real_profilers(*a, **k))

        scheduler = BatchScheduler(workers=0, executor="inline",
                                   mode="queue")
        [answers] = scheduler.run_batch(
            [AnalysisRequest("once", two_loop_source(), system="scaf")])

        assert len(answers) == 2
        assert all(a.status == STATUS_COMPUTED for a in answers)
        assert len(profiled) == 1, (
            f"module setup ran {len(profiled)} times for "
            f"{len(answers)} loop tasks; expected exactly once")
        snap = scheduler.telemetry.snapshot()
        # Discovery misses, then one hit per loop task.
        assert snap.prepared_misses == 1
        assert snap.prepared_hits == len(answers)
        assert snap.prepared_hit_rate == pytest.approx(2 / 3)
        assert prepared_cache_keys(), "prepared module should be resident"

    def test_lru_evicts_beyond_capacity(self):
        scheduler = BatchScheduler(workers=0, executor="inline",
                                   mode="queue", prepared_cache_size=1)
        requests = [
            AnalysisRequest(f"m{i}", two_loop_source(step1=i + 1),
                            system="caf")
            for i in range(3)
        ]
        scheduler.run_batch(requests)
        snap = scheduler.telemetry.snapshot()
        assert len(prepared_cache_keys()) == 1
        assert snap.prepared_evictions >= 2

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            BatchScheduler(workers=0, executor="inline",
                           prepared_cache_size=0)


# -- utilization accounting --------------------------------------------------

class TestSetupAttribution:
    def test_hits_are_not_rebilled_setup(self):
        """Setup cost is attributed to the task that populated the
        prepared cache; later hits bill zero additional setup, and the
        busy/setup split reconciles (setup is a subset of busy)."""
        scheduler = BatchScheduler(workers=0, executor="inline",
                                   mode="queue")
        request = AnalysisRequest("bill", two_loop_source(), system="scaf")
        scheduler.run_batch([request])
        first = scheduler.telemetry.snapshot()
        assert first.setup_s > 0.0
        assert first.busy_s >= first.setup_s

        # Same module again: the prepared cache is warm, so every task
        # hits and NO additional setup may be billed.
        scheduler2 = BatchScheduler(workers=0, executor="inline",
                                    mode="queue")
        scheduler2.run_batch([request])
        second = scheduler2.telemetry.snapshot()
        assert second.prepared_misses == 0
        assert second.prepared_hits > 0
        assert second.setup_s == 0.0
        assert second.busy_s > 0.0

    def test_utilization_report_reconciles(self):
        scheduler = BatchScheduler(workers=0, executor="inline",
                                   mode="queue")
        scheduler.run_batch(
            [AnalysisRequest("recon", two_loop_source(), system="scaf")])
        snap = scheduler.telemetry.snapshot()
        # Worker busy time is task wall time; it must cover the billed
        # setup and stay within the batch wall clock (inline executor:
        # one lane, no overlap).
        assert 0.0 < snap.setup_s <= snap.busy_s <= snap.wall_s + 1e-6


# -- zero-interpretation roster reuse ----------------------------------------

class TestRosterReuse:
    def _run(self, source, cache, monkeypatch=None, forbid_interp=False):
        scheduler = BatchScheduler(workers=0, executor="inline",
                                   mode="queue", cache=cache)
        if forbid_interp:
            def _boom(*a, **k):
                raise AssertionError(
                    "prepare_request ran: the probe interpreted the "
                    "module instead of reusing the prior roster")
            monkeypatch.setattr(scheduler_mod, "prepare_request", _boom)
            monkeypatch.setattr(worker_mod, "run_profilers", _boom)
        try:
            return (scheduler.run_batch(
                [AnalysisRequest("reuse", source, system="scaf")]),
                scheduler.telemetry.snapshot())
        finally:
            if forbid_interp:
                monkeypatch.undo()

    def test_edit_outside_executed_scope_reuses_roster(
            self, tmp_path, monkeypatch):
        """Editing a never-executed function reuses the prior run's
        hot-loop roster and fractions with ZERO interpretation: both
        the scheduler-side profiler (``prepare_request``) and the
        worker-side one (``run_profilers``) are replaced with bombs
        for the warm run, which must still serve every loop."""
        cache = ResultCache(str(tmp_path / "cache.sqlite"))
        cold, cold_snap = self._run(two_loop_source(dead_step=1), cache)
        assert all(a.status == STATUS_COMPUTED
                   for answers in cold for a in answers)
        assert cold_snap.profile_reuses == 0
        cold_ids = identities(cold)

        reset_prepared_cache()
        warm, snap = self._run(two_loop_source(dead_step=7), cache,
                               monkeypatch, forbid_interp=True)
        assert [a.status for answers in warm for a in answers] \
            == [STATUS_CACHED, STATUS_CACHED]
        assert snap.profile_reuses == 1
        assert snap.incremental_probes == 1
        assert snap.module_evals == 0
        assert snap.loop_tasks_dispatched == 0
        assert identities(warm) == cold_ids

    def test_edit_inside_executed_scope_reprofiles(self, tmp_path):
        """Touching an executed function breaks the proof: the probe
        must fall back to re-profiling (and recompute the dirty loop)."""
        cache = ResultCache(str(tmp_path / "cache.sqlite"))
        self._run(two_loop_source(step2=1), cache)
        reset_prepared_cache()
        warm, snap = self._run(two_loop_source(step2=3), cache)
        assert snap.profile_reuses == 0
        assert snap.incremental_probes == 1
        statuses = {a.loop: a.status for answers in warm for a in answers}
        assert statuses["@work1:%loop"] == STATUS_CACHED
        assert statuses["@work2:%loop"] == STATUS_COMPUTED


# -- traced queue timeline ---------------------------------------------------

class TestQueueTracing:
    def test_loop_tasks_nest_under_dispatch_with_wait_and_cache_attrs(
            self, tmp_path):
        tracer = TraceContext(sample_every=1)
        set_tracer(tracer)
        try:
            scheduler = BatchScheduler(workers=0, executor="inline",
                                       mode="queue")
            scheduler.run_batch([
                AnalysisRequest("t1", two_loop_source(), system="scaf"),
                AnalysisRequest("t2", two_loop_source(step1=2),
                                system="caf"),
            ])
        finally:
            set_tracer(NOOP)
        spans = tracer.export()
        assert validate_spans(spans) == []
        by_id = {s["id"]: s for s in spans}
        dispatches = [s for s in spans if s["cat"] == "dispatch"]
        tasks = [s for s in spans if s["cat"] == "task"]
        assert dispatches and tasks
        for d in dispatches:
            assert d["attrs"]["queue_wait_s"] >= 0.0
            assert "discovery" in d["attrs"]
        for t in tasks:
            assert by_id[t["parent"]]["cat"] == "dispatch"
            assert t["attrs"]["prepared"] in ("hit", "miss")
        # The offline stats document recomputes the cache traffic from
        # the artifact alone.
        import json
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(json.dumps(s) for s in spans) + "\n")
        doc = trace_document(str(path))
        assert doc["valid"]
        cache_doc = doc["prepared_cache"]
        assert cache_doc["hits"] + cache_doc["misses"] == len(tasks)
        assert cache_doc["hits"] >= 1


# -- LPT ordering across modules ---------------------------------------------

class _FakeRequest:
    def __init__(self, name):
        self.name = name
        self.system = "scaf"


class _FakeTask:
    """Just enough surface for the dispatcher (request labels, loop)."""

    def __init__(self, workload, loop):
        self.request = _FakeRequest(workload)
        self.loop = loop


class TestLptOrdering:
    """The cross-module priority fix: LPT ranks by *absolute*
    instruction volume (fraction x module total), not by the raw
    profiled time fraction, which is only comparable within one
    module."""

    def test_lpt_weight_scales_fraction_by_module_size(self):
        from repro.service.engine import lpt_weight

        tiny = lpt_weight(0.9, 5_000)        # 90% of a toy run
        huge = lpt_weight(0.125, 2_000_000)  # 12.5% of a massive run
        assert huge > tiny
        # No recorded total (pre-v4 cache rows): bare fraction, which
        # reproduces the old within-module ordering.
        assert lpt_weight(0.9, 0) == pytest.approx(0.9)
        assert lpt_weight(0.4, 0) < lpt_weight(0.9, 0)

    def _execution_order(self, specs):
        """Enqueue (workload, loop, fraction, total) tickets in one
        submit on a single-slot engine and return the order the
        runner saw them."""
        from types import SimpleNamespace

        from repro.service.engine import Ticket, WorkEngine, lpt_weight
        from repro.service.telemetry import ServiceTelemetry

        order, outcomes = [], []

        def runner(task):
            order.append(task.loop)
            return SimpleNamespace(prepared_hit=False, spans=[])

        engine = WorkEngine("inline", 0, max_pending=1,
                            telemetry=ServiceTelemetry(1),
                            loop_runner=runner)
        try:
            engine.submit([
                Ticket(_FakeTask(workload, loop), key=workload,
                       weight=lpt_weight(fraction, total),
                       deliver=lambda t, o, r, e: outcomes.append(o))
                for workload, loop, fraction, total in specs])
            assert engine.drain(timeout_s=10.0)
        finally:
            engine.close()
        assert all(o == "ok" for o in outcomes)
        return order

    def test_huge_module_loops_run_before_tinier_high_fractions(self):
        specs = [
            ("tiny0", "@t0", 0.9, 5_000),
            ("huge", "@h0", 0.125, 2_000_000),
            ("tiny1", "@t1", 0.9, 5_000),
            ("huge", "@h1", 0.125, 2_000_000),
        ]
        order = self._execution_order(specs)
        assert order == ["@h0", "@h1", "@t0", "@t1"]

    def test_zero_totals_fall_back_to_fraction_order(self):
        specs = [
            ("a", "@small", 0.2, 0),
            ("b", "@big", 0.8, 0),
            ("c", "@mid", 0.5, 0),
        ]
        assert self._execution_order(specs) == ["@big", "@mid", "@small"]
