"""End-to-end tests of the transformation side (§4.2.1, §4.2.5):
validation-code insertion, runtime checks, misspeculation, recovery.

Each test follows the full speculative-compilation story:

1. profile a program on a training input,
2. obtain a speculative no-dependence response from SCAF,
3. instrument the program with the response's validation code,
4. re-run on the training input  -> all checks pass,
5. flip the input to break the assertion -> misspeculation fires and
   recovery (non-speculative re-execution) still computes the right
   answer.
"""

import pytest

from repro import build_scaf
from repro.analysis import AnalysisContext
from repro.ir import parse_module, verify_module
from repro.profiling import run_profilers
from repro.query import (
    CFGView,
    ModRefQuery,
    ModRefResult,
    SpeculativeAssertion,
    TemporalRelation,
)
from repro.transforms import (
    Misspeculation,
    SpeculativeInterpreter,
    ValidationError,
    execute_validated,
    harvest_assertions,
    instrument,
)


def _prepare(text):
    module = parse_module(text)
    verify_module(module)
    context = AnalysisContext(module)
    profiles = run_profilers(module, context)
    return module, context, profiles


MOTIVATING = """
global @a : i32 = 0
global @b : i32 = 0
global @rare_flag : i32 = 0

func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i.next, %latch]
  %rare = load i32* @rare_flag
  %c = icmp ne i32 %rare, 0
  condbr i1 %c, %rare.path, %els
rare.path:
  br %join
els:
  store i32 %i, i32* @a
  br %join
join:
  %av = load i32* @a
  %bv = add i32 %av, 1
  store i32 %bv, i32* @b
  %i.next = add i32 %i, 1
  store i32 %i.next, i32* @a
  br %latch
latch:
  %cond = icmp slt i32 %i.next, 50
  condbr i1 %cond, %loop, %exit
exit:
  %r = load i32* @b
  ret i32 %r
}
"""


class TestControlSpeculationValidation:
    def _assertions(self, module, context, profiles):
        fn = module.get_function("main")
        loop = context.loop_info(fn).loops[0]
        join = fn.get_block("join")
        i3 = [i for i in join.instructions if i.opcode == "store"][-1]
        i2 = next(i for i in join.instructions if i.name == "av")
        scaf = build_scaf(module, profiles, context)
        response = scaf.query(ModRefQuery(
            i3, TemporalRelation.BEFORE, i2, loop, (),
            CFGView.static(context, fn)))
        assert response.result is ModRefResult.NO_MOD_REF
        return list(response.options.cheapest())

    def test_training_input_passes(self):
        module, context, profiles = _prepare(MOTIVATING)
        assertions = self._assertions(module, context, profiles)
        result, misspec, runtime, plan = execute_validated(
            module, assertions, profiles)
        assert not misspec
        assert result == 50  # b = last i + 1
        assert plan.assertions_applied == len(assertions)
        assert plan.inserted_checks >= 1

    def test_adversarial_input_misspeculates_and_recovers(self):
        module, context, profiles = _prepare(MOTIVATING)
        assertions = self._assertions(module, context, profiles)
        # Break the "rare path never taken" assertion.
        module.get_global("rare_flag").initializer = 1
        result, misspec, runtime, plan = execute_validated(
            module, assertions, profiles)
        assert misspec
        assert runtime.misspeculations == 1
        # Recovery re-executes non-speculatively and still produces
        # the program's true result on the new input: the rare path
        # skips the kill store, so @b = a(stale) + 1 = 50 still.
        assert result == 50

    def test_misspeculation_propagates_without_recovery(self):
        module, context, profiles = _prepare(MOTIVATING)
        assertions = self._assertions(module, context, profiles)
        module.get_global("rare_flag").initializer = 1
        with pytest.raises(Misspeculation, match="control-spec"):
            execute_validated(module, assertions, profiles, recover=False)


VALUE_PRED = """
global @cfg : i32 = 7
global @cfg_ref : i32* = zeroinit
global @out : i32 = 0
global @out_ptr : i32* = zeroinit
declare @malloc(i64) -> i8*

func @main() -> i32 {
entry:
  store i32* @cfg, i32** @cfg_ref
  %o.raw = call @malloc(i64 528)
  %o.i = bitcast i8* %o.raw to i32*
  %o.base = gep i32* %o.i, i64 2
  store i32* %o.base, i32** @out_ptr
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %c = load i32* @cfg
  store i32 %c, i32* @cfg
  %op = load i32** @out_ptr
  %o.slot = gep i32* %op, i64 0
  %o = load i32* %o.slot
  %o2 = add i32 %o, %c
  store i32 %o2, i32* %o.slot
  %i2 = add i32 %i, 1
  %lc = icmp slt i32 %i2, 10
  condbr i1 %lc, %loop, %exit
exit:
  %op2 = load i32** @out_ptr
  %r.slot = gep i32* %op2, i64 0
  %r = load i32* %r.slot
  ret i32 %r
}
"""


class TestValuePredictionValidation:
    def _assertion(self, module, context, profiles):
        fn = module.get_function("main")
        loop = context.loop_info(fn).loops[0]
        values = {i.name: i for i in fn.instructions() if i.name}
        store = next(i for i in fn.get_block("loop").instructions
                     if i.opcode == "store"
                     and i.pointer.name == "o.slot")
        scaf = build_scaf(module, profiles, context)
        response = scaf.query(ModRefQuery(
            store, TemporalRelation.BEFORE, values["c"], loop, (),
            CFGView.static(context, fn)))
        assert response.result is ModRefResult.NO_MOD_REF
        option = response.options.cheapest()
        assert any(a.module_id == "value-prediction" for a in option)
        return list(option)

    def test_training_input_passes(self):
        module, context, profiles = _prepare(VALUE_PRED)
        assertions = self._assertion(module, context, profiles)
        result, misspec, runtime, _ = execute_validated(
            module, assertions, profiles)
        assert not misspec
        assert result == 70
        assert runtime.checks_executed >= 10  # one compare per load

    def test_changed_config_misspeculates(self):
        module, context, profiles = _prepare(VALUE_PRED)
        assertions = self._assertion(module, context, profiles)
        module.get_global("cfg").initializer = 9
        result, misspec, runtime, _ = execute_validated(
            module, assertions, profiles)
        assert misspec
        assert result == 90  # recovery computes the true new result


SEPARATION = """
global @ro_ptr : f64* = zeroinit
global @w_ptr : f64* = zeroinit
global @alias_flag : i32 = 0
global @acc : f64 = 0.0
declare @malloc(i64) -> i8*

func @main() -> i32 {
entry:
  %ro.raw = call @malloc(i64 544)
  %ro.f = bitcast i8* %ro.raw to f64*
  %ro.base = gep f64* %ro.f, i64 2
  store f64* %ro.base, f64** @ro_ptr
  %w.raw = call @malloc(i64 544)
  %w.f = bitcast i8* %w.raw to f64*
  %w.base = gep f64* %w.f, i64 2
  store f64* %w.base, f64** @w_ptr
  br %fill
fill:
  %fi = phi i64 [0, %entry], [%fi2, %fill]
  %f.slot = gep f64* %ro.base, i64 %fi
  %fv = sitofp i64 %fi to f64
  store f64 %fv, f64* %f.slot
  %fi2 = add i64 %fi, 1
  %fc = icmp slt i64 %fi2, 64
  condbr i1 %fc, %fill, %head
head:
  br %loop
loop:
  %i = phi i64 [0, %head], [%i2, %loop]
  %ro = load f64** @ro_ptr
  %r.slot = gep f64* %ro, i64 %i
  %rv = load f64* %r.slot
  %w = load f64** @w_ptr
  %af = load i32* @alias_flag
  %aliased = icmp ne i32 %af, 0
  %w.slot.safe = gep f64* %w, i64 %i
  %w.slot = select i1 %aliased, f64* %r.slot, f64* %w.slot.safe
  store f64 %rv, f64* %w.slot
  %a0 = load f64* @acc
  %a1 = fadd f64 %a0, %rv
  store f64 %a1, f64* @acc
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 64
  condbr i1 %c, %loop, %exit
exit:
  ret i32 0
}
"""


class TestReadOnlyValidation:
    def _assertions(self, module, context, profiles):
        fn = module.get_function("main")
        loop = context.loop_info(fn).loop_with_header(
            fn.get_block("loop"))
        values = {i.name: i for i in fn.instructions() if i.name}
        w_store = next(i for i in fn.get_block("loop").instructions
                       if i.opcode == "store"
                       and i.pointer.name == "w.slot")
        scaf = build_scaf(module, profiles, context)
        response = scaf.query(ModRefQuery(
            w_store, TemporalRelation.BEFORE, values["rv"], loop, (),
            CFGView.static(context, fn)))
        assert response.result is ModRefResult.NO_MOD_REF
        option = response.options.without_prohibitive().cheapest()
        assert option is not None
        assert any(a.module_id == "read-only" for a in option)
        return list(option)

    def test_training_input_passes(self):
        module, context, profiles = _prepare(SEPARATION)
        assertions = self._assertions(module, context, profiles)
        result, misspec, runtime, plan = execute_validated(
            module, assertions, profiles)
        assert not misspec
        assert len(plan.separated_sites) == 1

    def test_aliased_write_misspeculates(self):
        module, context, profiles = _prepare(SEPARATION)
        assertions = self._assertions(module, context, profiles)
        module.get_global("alias_flag").initializer = 1
        result, misspec, runtime, _ = execute_validated(
            module, assertions, profiles)
        assert misspec
        assert result == 0  # recovery completes the program


SHORT_LIVED = """
global @tmp_ptr : f64* = zeroinit
global @leak_flag : i32 = 0
global @acc : f64 = 0.0
declare @malloc(i64) -> i8*
declare @free(i8*) -> void

func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i2, %latch]
  %raw = call @malloc(i64 16)
  %tmp = bitcast i8* %raw to f64*
  store f64* %tmp, f64** @tmp_ptr
  %t = load f64** @tmp_ptr
  %iv = sitofp i64 %i to f64
  store f64 %iv, f64* %t
  %tv = load f64* %t
  %a0 = load f64* @acc
  %a1 = fadd f64 %a0, %tv
  store f64 %a1, f64* @acc
  %lf = load i32* @leak_flag
  %leak = icmp ne i32 %lf, 0
  condbr i1 %leak, %latch, %do.free
do.free:
  call @free(i8* %raw)
  br %latch
latch:
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 60
  condbr i1 %c, %loop, %exit
exit:
  ret i32 0
}
"""


class TestShortLivedValidation:
    def _assertions(self, module, context, profiles):
        fn = module.get_function("main")
        loop = context.loop_info(fn).loops[0]
        values = {i.name: i for i in fn.instructions() if i.name}
        t_store = next(i for i in fn.get_block("loop").instructions
                       if i.opcode == "store" and i.pointer.name == "t")
        scaf = build_scaf(module, profiles, context)
        response = scaf.query(ModRefQuery(
            t_store, TemporalRelation.BEFORE, values["tv"], loop, (),
            CFGView.static(context, fn)))
        assert response.result is ModRefResult.NO_MOD_REF
        option = response.options.without_prohibitive().cheapest()
        assert option is not None
        assert any(a.module_id == "short-lived" for a in option)
        return list(option)

    def test_training_input_passes(self):
        module, context, profiles = _prepare(SHORT_LIVED)
        assertions = self._assertions(module, context, profiles)
        result, misspec, runtime, _ = execute_validated(
            module, assertions, profiles)
        assert not misspec
        assert runtime.checks_executed >= 59  # one per iteration end

    def test_leaked_object_misspeculates(self):
        module, context, profiles = _prepare(SHORT_LIVED)
        assertions = self._assertions(module, context, profiles)
        module.get_global("leak_flag").initializer = 1
        result, misspec, runtime, _ = execute_validated(
            module, assertions, profiles)
        assert misspec


class TestMemorySpeculationValidation:
    SOURCE = """
global @data : [128 x i32] = zeroinit
global @stride : i32 = 2
global @acc : i32 = 0

func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i2, %loop]
  %s = load i32* @stride
  %s64 = sext i32 %s to i64
  %w.i = mul i64 %i, %s64
  %w.wrap = srem i64 %w.i, 64
  %w.slot = gep [128 x i32]* @data, i64 0, i64 %w.wrap
  %it = trunc i64 %i to i32
  store i32 %it, i32* %w.slot
  %r.2w = mul i64 %w.wrap, 2
  %r.off = add i64 %r.2w, 65
  %r.i = srem i64 %r.off, 128
  %r.slot = gep [128 x i32]* @data, i64 0, i64 %r.i
  %rv = load i32* %r.slot
  %a0 = load i32* @acc
  %a1 = add i32 %a0, %rv
  store i32 %a1, i32* @acc
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 60
  condbr i1 %c, %loop, %exit
exit:
  ret i32 0
}
"""

    def _assertions(self, module, context, profiles):
        from repro import build_memory_speculation
        fn = module.get_function("main")
        loop = context.loop_info(fn).loops[0]
        values = {i.name: i for i in fn.instructions() if i.name}
        w_store = next(i for i in fn.get_block("loop").instructions
                       if i.opcode == "store"
                       and i.pointer.name == "w.slot")
        system = build_memory_speculation(module, profiles, context)
        response = system.query(ModRefQuery(
            w_store, TemporalRelation.SAME, values["rv"], loop, (),
            CFGView.static(context, fn)))
        assert response.result is ModRefResult.NO_MOD_REF
        option = response.options.cheapest()
        assert any(a.module_id == "memory-speculation" for a in option)
        return list(option)

    def test_training_input_passes(self):
        module, context, profiles = _prepare(self.SOURCE)
        assertions = self._assertions(module, context, profiles)
        result, misspec, runtime, _ = execute_validated(
            module, assertions, profiles)
        assert not misspec
        # Shadow tracking is per byte: visibly heavier than the cheap
        # checks (Figure 7).
        assert runtime.checks_executed >= 60 * 8

    def test_colliding_stride_misspeculates(self):
        module, context, profiles = _prepare(self.SOURCE)
        assertions = self._assertions(module, context, profiles)
        # stride 3: writes reach slots >= 65, colliding with the reads.
        module.get_global("stride").initializer = 3
        result, misspec, runtime, _ = execute_validated(
            module, assertions, profiles)
        assert misspec


class TestInstrumentMechanics:
    def test_conflicting_assertions_rejected(self):
        module, _, profiles = _prepare(MOTIVATING)
        a = SpeculativeAssertion("read-only", points=("x",),
                                 conflict_points=frozenset({"site"}))
        b = SpeculativeAssertion("short-lived", points=("y",),
                                 conflict_points=frozenset({"site"}))
        with pytest.raises(ValidationError, match="conflicting"):
            instrument(module, [a, b], profiles)

    def test_unknown_module_rejected(self):
        module, _, profiles = _prepare(MOTIVATING)
        a = SpeculativeAssertion("mystery-module")
        with pytest.raises(ValidationError, match="no validation"):
            instrument(module, [a], profiles)

    def test_duplicate_assertions_applied_once(self):
        module, context, profiles = _prepare(MOTIVATING)
        fn = module.get_function("main")
        dead = profiles.edge.dead_blocks(fn)
        a = SpeculativeAssertion("control-spec", points=tuple(dead))
        plan = instrument(module, [a, a], profiles)
        assert plan.assertions_applied == 1
        assert plan.inserted_checks == len(dead)

    def test_instrumented_module_still_verifies(self):
        from repro.ir import verify_module
        module, context, profiles = _prepare(MOTIVATING)
        fn = module.get_function("main")
        dead = profiles.edge.dead_blocks(fn)
        instrument(module, [SpeculativeAssertion("control-spec",
                                                 points=tuple(dead))],
                   profiles)
        verify_module(module)

    def test_harvest_assertions(self):
        from repro.clients import PDGClient, hot_loops
        module, context, profiles = _prepare(MOTIVATING)
        scaf = build_scaf(module, profiles, context)
        hot = hot_loops(profiles)[0]
        pdg = PDGClient(scaf).analyze_loop(hot.loop)
        assertions = harvest_assertions(pdg)
        assert assertions
        assert len(set(assertions)) == len(assertions)
