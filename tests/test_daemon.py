"""Daemon tests: the resident analysis service and its protocol.

What this file pins:

- wire protocol round-trips (addresses, frames, requests);
- daemon answers == in-process batch == sequential orchestrator
  (the correctness gate; all 16 registered workloads when
  ``REPRO_DAEMON_FULL=1``, synthetic modules otherwise);
- worker-resident state survives across submissions (prepared-module
  hits on the second client's batch);
- admission control: per-session window and global queue depth both
  shed with typed ``BUSY``; a draining daemon answers
  ``SHUTTING_DOWN``;
- lifecycle edges: client disconnect mid-request releases its queue
  slots, a worker crash during a multi-client drain recycles the
  fleet without dropping the other session's answers, and shutdown
  is idempotent;
- every session's batch span is re-parented under the daemon's
  single root span.
"""

import os
import threading

import pytest

from repro.daemon import (
    AnalysisDaemon,
    DaemonClient,
    DaemonConfig,
    DaemonError,
    daemon_available,
    protocol,
)
from repro.daemon.protocol import parse_addr
from repro.obs.trace import NOOP, TraceContext, set_tracer
from repro.service import (
    AnalysisRequest,
    BatchScheduler,
    DependenceService,
    ServiceConfig,
    STATUS_COMPUTED,
    STATUS_FALLBACK,
    request_for_workload,
    reset_prepared_cache,
    run_loop_task,
)

from tests.test_service import sequential_answers


@pytest.fixture(autouse=True)
def _fresh(tmp_path):
    reset_prepared_cache()
    yield
    reset_prepared_cache()
    set_tracer(NOOP)


def make_source(iters: int = 60, step: int = 1) -> str:
    return f"""
global @acc : i32 = 0

func @work() -> i32 {{
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i2, %loop]
  %a = load i32* @acc
  %a2 = add i32 %a, {step}
  store i32 %a2, i32* @acc
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, {iters}
  condbr i1 %c, %loop, %exit
exit:
  %r = load i32* @acc
  ret i32 %r
}}

func @main() -> i32 {{
entry:
  %x = call @work()
  ret i32 %x
}}
"""


def identities(groups):
    return [[a.identity() for a in answers] for answers in groups]


def start_daemon(tmp_path, service_config=None, service=None, **kwargs):
    config = DaemonConfig(
        addr=f"unix:{tmp_path}/repro-test.sock",
        service=service_config or ServiceConfig(workers=0,
                                                executor="inline"),
        **kwargs)
    daemon = AnalysisDaemon(config, service=service)
    daemon.start_background()
    return daemon, config.addr


def gated_service(telemetry_workers: int, gate: threading.Event,
                  crash_on=None, crashed=None):
    """A service whose (thread-pool) workers wait on ``gate`` before
    running each task — and optionally crash once on a named request
    (keyed by request name so the injection is deterministic even
    when several clients race identical loop names)."""
    svc = DependenceService(ServiceConfig(workers=telemetry_workers,
                                          executor="thread"))
    lock = threading.Lock()

    def runner(task):
        assert gate.wait(timeout=60), "test gate never opened"
        if crash_on and task.loop and task.request.name == crash_on:
            with lock:
                first = not crashed
                crashed.append(task.loop)
            if first:
                raise RuntimeError("simulated worker death")
        return run_loop_task(task)

    svc.scheduler.close()
    svc.scheduler = BatchScheduler(workers=telemetry_workers,
                                   executor="thread", mode="queue",
                                   loop_runner=runner,
                                   telemetry=svc.telemetry)
    return svc


# -- protocol ----------------------------------------------------------------

class TestProtocol:
    def test_parse_addr_forms(self):
        assert parse_addr("unix:/a/b.sock") == ("unix", "/a/b.sock")
        assert parse_addr("/a/b.sock") == ("unix", "/a/b.sock")
        assert parse_addr("local.sock") == ("unix", "local.sock")
        assert parse_addr("127.0.0.1:7777") == ("tcp",
                                                ("127.0.0.1", 7777))
        assert parse_addr("tcp:localhost:0") == ("tcp", ("localhost", 0))
        with pytest.raises(ValueError):
            parse_addr("not-an-address")

    def test_frame_round_trip(self):
        doc = {"verb": "submit", "n": 3, "nested": {"a": [1, 2]}}
        line = protocol.encode_message(doc)
        assert line.endswith(b"\n")
        assert protocol.decode_message(line) == doc
        with pytest.raises(ValueError):
            protocol.decode_message(b"[1, 2]\n")

    def test_request_round_trip(self):
        from repro.core.orchestrator import OrchestratorConfig
        for config in (None, OrchestratorConfig(join_policy="eager")):
            request = AnalysisRequest("t", make_source(), system="caf",
                                      loops=("@work:%loop",),
                                      config=config)
            restored = protocol.request_from_wire(
                protocol.decode_message(protocol.encode_message(
                    protocol.request_to_wire(request))))
            assert restored == request

    def test_error_helpers(self):
        doc = protocol.error(protocol.ERR_BUSY, "full", retry=True)
        assert doc == {"ok": False, "error": "BUSY",
                       "message": "full", "retry": True}
        assert protocol.ok(job="j1") == {"ok": True, "job": "j1"}


# -- round trips over the socket ---------------------------------------------

class TestRoundTrip:
    def test_ping_and_availability(self, tmp_path):
        daemon, addr = start_daemon(tmp_path)
        try:
            assert daemon_available(addr)
            with DaemonClient(addr) as c:
                reply = c.ping()
                assert reply["protocol"] == protocol.PROTOCOL_VERSION
                assert reply["draining"] is False
            assert not daemon_available(f"unix:{tmp_path}/nothing.sock")
        finally:
            daemon.stop()

    def test_submit_poll_stream_agree(self, tmp_path):
        daemon, addr = start_daemon(tmp_path)
        try:
            requests = [AnalysisRequest("a", make_source(), system="scaf"),
                        AnalysisRequest("b", make_source(step=2),
                                        system="caf")]
            with DaemonClient(addr) as c:
                job = c.submit(requests)
                streamed = []
                done = c.stream(job, on_answer=lambda d:
                                streamed.append(d["loop"]))
                assert done["status"] == "done"
                polled = c.poll(job)
            assert polled["status"] == "done"
            assert polled["answers"] == done["answers"]
            assert len(done["answers"]) == 2
            flat = [d["loop"] for g in done["answers"] for d in g]
            assert sorted(streamed) == sorted(flat)
        finally:
            daemon.stop()

    def test_tcp_binding_reports_real_port(self, tmp_path):
        daemon, _ = start_daemon(tmp_path)
        daemon.stop()
        config = DaemonConfig(addr="tcp:127.0.0.1:0",
                              service=ServiceConfig(workers=0,
                                                    executor="inline"))
        daemon = AnalysisDaemon(config).start_background()
        try:
            host, port = parse_addr(daemon.bound_addr)[1]
            assert port != 0
            with DaemonClient(daemon.bound_addr) as c:
                assert c.ping()["ok"]
        finally:
            daemon.stop()

    def test_unknown_verb_and_job_are_typed(self, tmp_path):
        daemon, addr = start_daemon(tmp_path)
        try:
            with DaemonClient(addr) as c:
                with pytest.raises(DaemonError) as info:
                    c._rpc({"verb": "frobnicate"})
                assert info.value.code == protocol.ERR_UNKNOWN_VERB
                with pytest.raises(DaemonError) as info:
                    c.poll("j999")
                assert info.value.code == protocol.ERR_UNKNOWN_JOB
                with pytest.raises(DaemonError) as info:
                    c._rpc({"verb": "submit", "requests": []})
                assert info.value.code == protocol.ERR_BAD_REQUEST
        finally:
            daemon.stop()


# -- correctness gate --------------------------------------------------------

class TestEquality:
    def _requests(self):
        if os.environ.get("REPRO_DAEMON_FULL"):
            from repro.workloads import WORKLOADS
            return [request_for_workload(name)
                    for name in sorted(WORKLOADS)]
        return [AnalysisRequest("eq-a", make_source(), system="scaf"),
                AnalysisRequest("eq-b", make_source(iters=80, step=3),
                                system="caf"),
                AnalysisRequest("eq-c", make_source(step=2),
                                system="confluence")]

    def test_daemon_equals_batch_equals_sequential(self, tmp_path):
        """The property the whole subsystem hangs off: answers served
        over the socket are identical, loop for loop, to an in-process
        batch and to the sequential reference orchestrator."""
        requests = self._requests()
        expected = [identities([sequential_answers(r)])[0]
                    for r in requests]

        reset_prepared_cache()
        with DependenceService(ServiceConfig(workers=0,
                                             executor="inline")) as svc:
            batch = identities(svc.run_batch(requests).answers)
        assert batch == expected

        reset_prepared_cache()
        daemon, addr = start_daemon(tmp_path)
        try:
            with DaemonClient(addr) as c:
                served = identities(c.run_batch(requests))
        finally:
            daemon.stop()
        assert served == expected


# -- resident state ----------------------------------------------------------

class TestResidentState:
    def test_prepared_cache_survives_across_clients(self, tmp_path):
        """Two clients, two batches, one module: the second batch hits
        the worker-resident prepared-module cache the first one warmed
        — the daemon's whole reason to exist."""
        daemon, addr = start_daemon(tmp_path)
        try:
            request = AnalysisRequest("warm", make_source(),
                                      system="scaf")
            with DaemonClient(addr) as c:
                c.run_batch([request])
                first = c.stats()["telemetry"]
            with DaemonClient(addr) as c:
                c.run_batch([request])
                second = c.stats()["telemetry"]
            assert second["prepared_hits"] > first["prepared_hits"]
            assert second["prepared_misses"] == first["prepared_misses"]
        finally:
            daemon.stop()

    def test_stats_counts_sessions_and_jobs(self, tmp_path):
        daemon, addr = start_daemon(tmp_path)
        try:
            with DaemonClient(addr) as c:
                c.run_batch([AnalysisRequest("s", make_source(),
                                             system="scaf")])
                stats = c.stats()
            d = stats["daemon"]
            assert d["jobs_completed"] == 1
            assert d["jobs_active"] == 0
            assert d["sessions"] >= 1
            assert d["draining"] is False
            assert stats["telemetry"]["loops_computed"] >= 1
        finally:
            daemon.stop()

    def test_recycle_verb_replaces_fleet(self, tmp_path):
        daemon, addr = start_daemon(tmp_path)
        try:
            with DaemonClient(addr) as c:
                reply = c.recycle()
                assert reply["recycled"] is True
                # The engine still serves after the swap.
                answers = c.run_batch([AnalysisRequest(
                    "post-recycle", make_source(), system="scaf")])
                assert answers[0]
        finally:
            daemon.stop()


# -- admission control -------------------------------------------------------

class TestAdmission:
    def test_global_queue_depth_sheds_busy(self, tmp_path):
        daemon, addr = start_daemon(tmp_path, max_queue_depth=0)
        try:
            with DaemonClient(addr) as c:
                with pytest.raises(DaemonError) as info:
                    c.submit([AnalysisRequest("x", make_source(),
                                              system="scaf")])
                assert info.value.busy
                assert info.value.doc.get("retry") is True
                assert c.stats()["daemon"]["jobs_shed"] == 1
        finally:
            daemon.stop()

    def test_client_window_sheds_busy_then_recovers(self, tmp_path):
        gate = threading.Event()
        daemon, addr = start_daemon(
            tmp_path, service=gated_service(1, gate), max_client_jobs=1)
        try:
            request = AnalysisRequest("w", make_source(), system="scaf")
            with DaemonClient(addr) as c:
                job = c.submit([request])
                with pytest.raises(DaemonError) as info:
                    c.submit([request])
                assert info.value.busy
                gate.set()
                done = c.stream(job)
                assert done["status"] == "done"
                # Window released: the next submit is admitted.
                assert c.submit([request])
        finally:
            gate.set()
            daemon.stop()

    def test_draining_daemon_answers_shutting_down(self, tmp_path):
        gate = threading.Event()
        daemon, addr = start_daemon(
            tmp_path, service=gated_service(1, gate),
            drain_timeout_s=30.0)
        try:
            request = AnalysisRequest("d", make_source(), system="scaf")
            with DaemonClient(addr) as c:
                c.submit([request])  # keeps the drain waiting
                assert c.shutdown()["draining"] is True
                with pytest.raises(DaemonError) as info:
                    c.submit([request])
                assert info.value.shutting_down
                # Double shutdown is an idempotent no-op.
                assert c.shutdown()["draining"] is True
                gate.set()
        finally:
            gate.set()
            daemon.stop()


# -- lifecycle edges ---------------------------------------------------------

class TestLifecycle:
    def test_disconnect_mid_request_releases_slots(self, tmp_path):
        """A client that vanishes mid-request must not leak its queue
        slots: its tickets are swept and a later session gets the full
        admission window."""
        gate = threading.Event()
        daemon, addr = start_daemon(
            tmp_path, service=gated_service(1, gate), max_client_jobs=1)
        try:
            request = AnalysisRequest("gone", make_source(),
                                      system="scaf")
            ghost = DaemonClient(addr)
            ghost.submit([request])
            ghost.close()  # vanish with the job still gated
            gate.set()
            with DaemonClient(addr) as c:
                # Fresh session, fresh window: admitted immediately.
                done = c.stream(c.submit([request]))
                assert done["status"] == "done"
                stats = c.stats()["daemon"]
                assert stats["queue_depth"] == 0
                assert stats["jobs_active"] == 0
        finally:
            gate.set()
            daemon.stop()

    def test_worker_crash_during_multi_client_drain(self, tmp_path):
        """One worker dies on session A's loop while session B's batch
        is in the same queue: the fleet recycles, B's answers all
        compute, A degrades only the crashed loop."""
        gate = threading.Event()
        crashed = []
        daemon, addr = start_daemon(
            tmp_path,
            service=gated_service(2, gate, crash_on="victim",
                                  crashed=crashed))
        try:
            victim = AnalysisRequest("victim", make_source(),
                                     system="scaf")
            bystander = AnalysisRequest("bystander",
                                        make_source(iters=80, step=2),
                                        system="caf")
            results = {}

            def run(name, request):
                with DaemonClient(addr) as c:
                    results[name] = c.run_batch([request])

            threads = [threading.Thread(target=run, args=a)
                       for a in (("victim", victim),
                                 ("bystander", bystander))]
            for t in threads:
                t.start()
            gate.set()
            for t in threads:
                t.join(timeout=120)
            assert crashed, "the injected crash never fired"
            assert all(a.status == STATUS_COMPUTED
                       for a in results["bystander"][0])
            victim_status = {a.status
                             for a in results["victim"][0]}
            assert STATUS_FALLBACK in victim_status
            with DaemonClient(addr) as c:
                assert c.stats()["telemetry"]["fleet_rebuilds"] >= 1
        finally:
            gate.set()
            daemon.stop()

    def test_session_spans_reparent_under_daemon_root(self, tmp_path):
        tracer = TraceContext()
        set_tracer(tracer)
        daemon, addr = start_daemon(tmp_path)
        try:
            with DaemonClient(addr) as c:
                c.run_batch([AnalysisRequest("traced", make_source(),
                                             system="scaf")])
        finally:
            daemon.stop()
            set_tracer(NOOP)
        spans = tracer.export()
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        assert "daemon" in by_name and "session_batch" in by_name
        root = by_name["daemon"][0]
        for batch_span in by_name["session_batch"]:
            assert batch_span["parent"] == root["id"]
