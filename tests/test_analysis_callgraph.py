"""Tests for call graph construction and traversal order."""

from repro.analysis import CallGraph
from repro.ir import parse_module


SOURCE = """
declare @malloc(i64) -> i8*

func @leaf() -> i32 {
entry:
  ret i32 1
}

func @mid() -> i32 {
entry:
  %a = call @leaf()
  %m = call @malloc(i64 8)
  ret i32 %a
}

func @rec(i32 %n) -> i32 {
entry:
  %c = icmp sgt i32 %n, 0
  condbr i1 %c, %again, %out
again:
  %n2 = sub i32 %n, 1
  %r = call @rec(i32 %n2)
  br %out
out:
  %v = phi i32 [0, %entry], [%r, %again]
  ret i32 %v
}

func @main() -> i32 {
entry:
  %a = call @mid()
  %b = call @rec(i32 3)
  ret i32 %a
}
"""


def _cg():
    m = parse_module(SOURCE)
    return m, CallGraph(m)


class TestCallGraph:
    def test_callees(self):
        m, cg = _cg()
        main = m.get_function("main")
        names = {f.name for f in cg.callees_of(main)}
        assert names == {"mid", "rec"}
        mid = m.get_function("mid")
        assert {f.name for f in cg.callees_of(mid)} == {"leaf", "malloc"}

    def test_callers(self):
        m, cg = _cg()
        leaf = m.get_function("leaf")
        assert {f.name for f in cg.callers_of(leaf)} == {"mid"}

    def test_callsites(self):
        m, cg = _cg()
        rec = m.get_function("rec")
        # called once from main, once from itself
        assert len(cg.callsites_of(rec)) == 2

    def test_recursion_detection(self):
        m, cg = _cg()
        assert cg.is_recursive(m.get_function("rec"))
        assert not cg.is_recursive(m.get_function("mid"))
        assert not cg.is_recursive(m.get_function("main"))

    def test_bottom_up_order(self):
        m, cg = _cg()
        order = [f.name for f in cg.bottom_up()]
        assert order.index("leaf") < order.index("mid")
        assert order.index("mid") < order.index("main")
        assert order.index("rec") < order.index("main")
        assert set(order) == {"leaf", "mid", "rec", "main", "malloc"}
