"""Tests for natural-loop detection and nesting."""

import pytest

from repro.analysis import LoopInfo
from repro.ir import parse_module


NESTED = """
func @f() -> i32 {
entry:
  br %outer
outer:
  %i = phi i32 [0, %entry], [%i2, %outer.latch]
  br %inner
inner:
  %j = phi i32 [0, %outer], [%j2, %inner]
  %j2 = add i32 %j, 1
  %jc = icmp slt i32 %j2, 4
  condbr i1 %jc, %inner, %outer.latch
outer.latch:
  %i2 = add i32 %i, 1
  %ic = icmp slt i32 %i2, 4
  condbr i1 %ic, %outer, %exit
exit:
  ret i32 0
}
"""


def _fn(text):
    return next(iter(parse_module(text).defined_functions))


class TestLoopDetection:
    def test_finds_both_loops(self):
        fn = _fn(NESTED)
        info = LoopInfo.compute(fn)
        assert len(info.loops) == 2

    def test_headers(self):
        fn = _fn(NESTED)
        info = LoopInfo.compute(fn)
        headers = {l.header.name for l in info.loops}
        assert headers == {"outer", "inner"}

    def test_nesting(self):
        fn = _fn(NESTED)
        info = LoopInfo.compute(fn)
        inner = info.loop_with_header(fn.get_block("inner"))
        outer = info.loop_with_header(fn.get_block("outer"))
        assert inner.parent is outer
        assert inner in outer.children
        assert outer.parent is None
        assert inner.depth == 2
        assert outer.depth == 1

    def test_blocks(self):
        fn = _fn(NESTED)
        info = LoopInfo.compute(fn)
        outer = info.loop_with_header(fn.get_block("outer"))
        names = {b.name for b in outer.blocks}
        assert names == {"outer", "inner", "outer.latch"}
        inner = info.loop_with_header(fn.get_block("inner"))
        assert {b.name for b in inner.blocks} == {"inner"}

    def test_innermost_loop_of(self):
        fn = _fn(NESTED)
        info = LoopInfo.compute(fn)
        inner = info.loop_with_header(fn.get_block("inner"))
        outer = info.loop_with_header(fn.get_block("outer"))
        assert info.innermost_loop_of(fn.get_block("inner")) is inner
        assert info.innermost_loop_of(fn.get_block("outer.latch")) is outer
        assert info.innermost_loop_of(fn.get_block("exit")) is None

    def test_latches_and_exits(self):
        fn = _fn(NESTED)
        info = LoopInfo.compute(fn)
        outer = info.loop_with_header(fn.get_block("outer"))
        assert [b.name for b in outer.latches] == ["outer.latch"]
        assert [b.name for b in outer.exit_blocks] == ["exit"]

    def test_preheader(self):
        fn = _fn(NESTED)
        info = LoopInfo.compute(fn)
        outer = info.loop_with_header(fn.get_block("outer"))
        assert outer.preheader.name == "entry"

    def test_contains_instruction(self):
        fn = _fn(NESTED)
        info = LoopInfo.compute(fn)
        inner = info.loop_with_header(fn.get_block("inner"))
        j2 = next(i for i in fn.instructions() if i.name == "j2")
        i2 = next(i for i in fn.instructions() if i.name == "i2")
        assert inner.contains(j2)
        assert not inner.contains(i2)

    def test_no_loops(self):
        fn = _fn("""
func @g() -> i32 {
entry:
  ret i32 0
}
""")
        info = LoopInfo.compute(fn)
        assert info.loops == []
        assert info.top_level == []

    def test_memory_instructions(self):
        fn = _fn("""
global @x : i32 = 0
func @g() -> i32 {
entry:
  br %loop
loop:
  %v = load i32* @x
  %v2 = add i32 %v, 1
  store i32 %v2, i32* @x
  %c = icmp slt i32 %v2, 10
  condbr i1 %c, %loop, %out
out:
  ret i32 0
}
""")
        info = LoopInfo.compute(fn)
        loop = info.loops[0]
        mem = loop.memory_instructions()
        assert len(mem) == 2  # one load, one store
