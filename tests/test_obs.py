"""Tests for the observability layer (repro.obs).

Covers the span tracer (nesting, explicit parents, events, sampling,
the disabled no-op path), structural validation, cross-process span
adoption, both exporters (JSONL round-trip, Chrome trace-event
schema), the attribution fold and its reconciliation against the
exported artifact, the interpolating latency histogram, the metrics
registry's snapshot/merge algebra, the telemetry report golden text,
and the ``--trace``/``stats`` CLI surface end to end.
"""

import json

import pytest

from repro.cli import main
from repro.obs import (
    LatencyHistogram,
    MetricsRegistry,
    NOOP,
    TraceContext,
    TraceSpec,
    attribution_from_spans,
    current_tracer,
    load_jsonl,
    load_trace,
    load_trace_events,
    render_attribution,
    set_tracer,
    span_index,
    validate_spans,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import series_key
from repro.service import AnalysisRequest, BatchScheduler
from repro.service.telemetry import ServiceTelemetry, format_report

from tests.test_cli import PROGRAM
from tests.test_service import make_source


@pytest.fixture(autouse=True)
def _restore_tracer():
    """No test may leak an installed tracer into the next."""
    previous = current_tracer()
    yield
    set_tracer(previous)


# -- tracer ------------------------------------------------------------------

class TestTraceContext:
    def test_nesting_parents_and_order(self):
        t = TraceContext()
        with t.span("outer", cat="query") as outer:
            with t.span("inner", cat="module_eval", module="m"):
                pass
        spans = t.export()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer_doc = spans
        assert outer_doc["parent"] is None
        assert inner["parent"] == outer_doc["id"]
        assert inner["attrs"] == {"module": "m"}
        assert outer.id == outer_doc["id"]
        assert validate_spans(spans) == []

    def test_attrs_set_at_exit_and_events(self):
        t = TraceContext()
        with t.span("q", cat="query") as span:
            span.event("cache_hit", key="k")
            t.event("bailout", module="m")   # innermost-open helper
            span.set(result="NoDep")
        (doc,) = t.export()
        assert doc["attrs"]["result"] == "NoDep"
        assert [e["name"] for e in doc["events"]] == ["cache_hit",
                                                      "bailout"]
        assert doc["events"][0]["attrs"] == {"key": "k"}

    def test_event_without_open_span_is_dropped(self):
        t = TraceContext()
        t.event("orphan")
        assert t.export() == []

    def test_begin_end_explicit_parent_out_of_order(self):
        t = TraceContext()
        with t.span("batch") as root:
            a = t.begin("dispatch", parent=root.id, shard=1)
            b = t.begin("dispatch", parent=root.id, shard=2)
            b.end(status="completed")
            a.end(status="timeout")
        spans = span_index(t.export())
        dispatches = [s for s in spans.values() if s["name"] == "dispatch"]
        assert {s["attrs"]["status"] for s in dispatches} == {
            "completed", "timeout"}
        assert all(s["parent"] == root.id for s in dispatches)
        assert validate_spans(list(spans.values())) == []

    def test_begin_defaults_to_stack_parent(self):
        t = TraceContext()
        with t.span("outer") as outer:
            s = t.begin("child")
            s.end()
        child = [s for s in t.export() if s["name"] == "child"][0]
        assert child["parent"] == outer.id

    def test_span_ids_unique(self):
        t = TraceContext()
        for _ in range(50):
            with t.span("s"):
                pass
        ids = [s["id"] for s in t.export()]
        assert len(set(ids)) == 50

    def test_sampling_keeps_every_nth_root_with_subtree(self):
        t = TraceContext(sample_every=3)
        for i in range(7):
            with t.span("query", cat="query", sample=True, n=i):
                with t.span("eval", cat="module_eval"):
                    t.event("inside")
        spans = t.export()
        queries = [s for s in spans if s["cat"] == "query"]
        evals = [s for s in spans if s["cat"] == "module_eval"]
        # roots 0, 3, 6 recorded; each with its full subtree.
        assert [q["attrs"]["n"] for q in queries] == [0, 3, 6]
        assert len(evals) == 3
        assert validate_spans(spans) == []

    def test_sampling_never_drops_infrastructure_spans(self):
        t = TraceContext(sample_every=1000)
        with t.span("query", cat="query", sample=True):
            pass                                 # root 0: recorded
        with t.span("query", cat="query", sample=True):
            pass                                 # root 1: suppressed
        with t.span("shard", cat="shard"):       # not a sampling root
            pass
        cats = [s["cat"] for s in t.export()]
        assert cats.count("query") == 1
        assert cats.count("shard") == 1

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceContext(sample_every=0)

    def test_noop_is_default_and_free(self):
        assert current_tracer() is NOOP
        assert not NOOP.enabled
        s1 = NOOP.span("a", cat="query", sample=True, big="attr")
        s2 = NOOP.begin("b")
        assert s1 is s2                    # shared null singleton
        with s1:
            s1.set(x=1)
            s1.event("e")
        s2.end()
        assert NOOP.export() == []
        assert len(NOOP) == 0

    def test_set_tracer_returns_previous(self):
        t = TraceContext()
        previous = set_tracer(t)
        assert current_tracer() is t
        assert set_tracer(previous) is t
        assert current_tracer() is previous

    def test_trace_spec_builds_equivalent_tracer(self):
        spec = TraceSpec(sample_every=4)
        tracer = spec.build()
        assert isinstance(tracer, TraceContext)
        assert tracer.sample_every == 4


class TestValidateSpans:
    def _span(self, sid, parent=None, start=0.0, dur=1.0, **over):
        doc = {"id": sid, "parent": parent, "name": sid, "cat": "span",
               "start": start, "dur": dur, "pid": 1, "tid": 1,
               "attrs": {}, "events": []}
        doc.update(over)
        return doc

    def test_clean_trace(self):
        spans = [self._span("a"), self._span("b", parent="a",
                                             start=0.1, dur=0.5)]
        assert validate_spans(spans) == []

    def test_duplicate_id(self):
        problems = validate_spans([self._span("a"), self._span("a")])
        assert any("duplicate" in p for p in problems)

    def test_unknown_parent(self):
        problems = validate_spans([self._span("a", parent="ghost")])
        assert any("unknown parent" in p for p in problems)

    def test_missing_key(self):
        bad = self._span("a")
        del bad["dur"]
        problems = validate_spans([bad])
        assert any("missing key 'dur'" in p for p in problems)

    def test_child_escaping_parent_interval(self):
        spans = [self._span("a", start=0.0, dur=1.0),
                 self._span("b", parent="a", start=5.0, dur=1.0)]
        assert any("starts before" in p or "ends after" in p
                   for p in validate_spans(spans))

    def test_parent_cycle(self):
        spans = [self._span("a", parent="b"),
                 self._span("b", parent="a")]
        assert any("cycle" in p for p in validate_spans(spans))


class TestAdopt:
    def test_worker_roots_reparent_under_dispatch(self):
        scheduler = TraceContext()
        with scheduler.span("batch"):
            dispatch = scheduler.begin("dispatch", cat="dispatch")
            worker = TraceContext()
            with worker.span("shard", cat="shard"):
                with worker.span("loop", cat="loop"):
                    pass
            dispatch.end(status="completed")
            scheduler.adopt(worker.export(), parent_id=dispatch.id)
        spans = scheduler.export()
        index = span_index(spans)
        shard = [s for s in spans if s["cat"] == "shard"][0]
        loop = [s for s in spans if s["cat"] == "loop"][0]
        assert shard["parent"] == dispatch.id
        assert index[loop["parent"]] is shard
        assert validate_spans(spans) == []


# -- exporters ---------------------------------------------------------------

def _sample_trace():
    t = TraceContext()
    with t.span("query", cat="query", sample=True,
                contributors=["PHI", "KillFlow"]) as q:
        q.event("cache_hit", stripped=False)
        with t.span("eval", cat="module_eval", module="PHI",
                    improved=True):
            with t.span("premise", cat="premise", asker="PHI"):
                pass
        with t.span("eval", cat="module_eval", module="KillFlow",
                    improved=False):
            pass
    with t.span("loop", cat="loop", loop="@main:%loop", workload="w"):
        pass
    return t.export()


class TestExporters:
    def test_jsonl_round_trips_exactly(self, tmp_path):
        spans = _sample_trace()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(spans, path)
        assert load_jsonl(path) == spans
        assert load_trace(path) == spans      # sniffed as JSONL

    def test_chrome_trace_schema(self, tmp_path):
        spans = _sample_trace()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(spans, path)
        with open(path) as f:
            doc = json.load(f)                # must be valid JSON
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == len(spans)
        assert len(instants) == 1             # the cache_hit event
        for e in complete:
            for key in ("name", "cat", "ts", "dur", "pid", "tid",
                        "args"):
                assert key in e
            assert "span_id" in e["args"]
        assert meta and meta[0]["name"] == "process_name"

    def test_chrome_trace_reconstructs_span_graph(self, tmp_path):
        spans = _sample_trace()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(spans, path)
        loaded = load_trace_events(path)
        assert load_trace(path) == loaded     # sniffed as Chrome
        assert {s["id"] for s in loaded} == {s["id"] for s in spans}
        assert ({(s["id"], s["parent"]) for s in loaded}
                == {(s["id"], s["parent"]) for s in spans})
        assert validate_spans(loaded) == []


# -- attribution -------------------------------------------------------------

class TestAttribution:
    def test_fold_counts_and_self_time(self):
        # Hand-built spans with exact durations: an eval of 1.0s whose
        # premise child burned 0.4s must self-bill only 0.6s.
        spans = [
            {"id": "q", "parent": None, "name": "query", "cat": "query",
             "start": 0.0, "dur": 2.0, "pid": 1, "tid": 1,
             "attrs": {"contributors": ["A", "B"]}, "events": []},
            {"id": "e1", "parent": "q", "name": "eval",
             "cat": "module_eval", "start": 0.0, "dur": 1.0,
             "pid": 1, "tid": 1,
             "attrs": {"module": "A", "improved": True}, "events": []},
            {"id": "p", "parent": "e1", "name": "premise",
             "cat": "premise", "start": 0.1, "dur": 0.4,
             "pid": 1, "tid": 1, "attrs": {"asker": "A"}, "events": []},
            {"id": "e2", "parent": "p", "name": "eval",
             "cat": "module_eval", "start": 0.1, "dur": 0.3,
             "pid": 1, "tid": 1,
             "attrs": {"module": "B", "improved": False},
             "events": []},
            {"id": "l", "parent": None, "name": "loop", "cat": "loop",
             "start": 0.0, "dur": 3.0, "pid": 1, "tid": 1,
             "attrs": {"loop": "@main:%loop", "workload": "w"},
             "events": []},
        ]
        report = attribution_from_spans(spans)
        assert report.queries == 1
        assert report.premises == 1
        assert report.query_time_s == pytest.approx(2.0)
        by_name = {m.module: m for m in report.modules}
        assert by_name["A"].evals == 1
        assert by_name["A"].total_time_s == pytest.approx(1.0)
        assert by_name["A"].self_time_s == pytest.approx(0.6)
        assert by_name["A"].improvements == 1
        assert by_name["A"].queries_resolved == 1
        assert by_name["B"].self_time_s == pytest.approx(0.3)
        assert by_name["B"].improvements == 0
        assert report.loops == {
            "w/@main:%loop": {"workload": "w", "loop": "@main:%loop",
                              "time_s": pytest.approx(3.0), "count": 1}}
        # Sorted by descending self time.
        assert [m.module for m in report.modules] == ["A", "B"]

    def test_render_contains_modules_and_header(self):
        report = attribution_from_spans(_sample_trace())
        text = render_attribution(report)
        assert "per-module attribution" in text
        assert "PHI" in text and "KillFlow" in text
        assert "resolved" in text and "self(ms)" in text
        assert "w/@main:%loop" in text

    def test_report_to_dict_is_json_able(self):
        doc = attribution_from_spans(_sample_trace()).to_dict()
        json.dumps(doc)
        assert doc["queries"] == 1
        assert {m["module"] for m in doc["modules"]} >= {"PHI",
                                                         "KillFlow"}


# -- histogram ---------------------------------------------------------------

class TestLatencyHistogram:
    def test_percentile_interpolates_within_bucket(self):
        h = LatencyHistogram()
        for _ in range(100):
            h.record(3e-4)                 # bucket (1e-4, ~3.16e-4]
        lo, hi = 1e-4, 10.0 ** (-3.5)
        p25, p50, p75 = (h.percentile(p) for p in (25, 50, 75))
        assert lo < p25 < p50 < p75 <= hi  # moves smoothly, not a step
        assert p25 == pytest.approx(lo + (hi - lo) * 0.25)
        assert p50 == pytest.approx(lo + (hi - lo) * 0.5)
        # Estimates never exceed the observed maximum: identical
        # samples saturate at their true value, not the bucket bound.
        same = LatencyHistogram()
        for _ in range(100):
            same.record(2e-4)
        assert same.percentile(99) == 2e-4

    def test_sub_100us_latencies_resolve(self):
        fast, slow = LatencyHistogram(), LatencyHistogram()
        for _ in range(10):
            fast.record(2e-6)              # 2µs
            slow.record(5e-5)              # 50µs
        assert fast.percentile(50) < 1e-5
        assert slow.percentile(50) > 1e-5
        assert fast.percentile(50) < slow.percentile(50) < 1e-4

    def test_percentile_clamped_to_observed_max(self):
        h = LatencyHistogram()
        h.record(0.5)
        assert h.percentile(99) <= h.max_s == 0.5

    def test_overflow_bucket_uses_observed_max(self):
        h = LatencyHistogram()
        h.record(1e9)                      # beyond the last bound
        assert h.counts[-1] == 1
        # Interpolates between the last bound and the observed max
        # (the open bucket has no upper bound of its own).
        assert LatencyHistogram.BUCKETS[-1] < h.percentile(50) <= 1e9
        assert h.percentile(100) == 1e9

    def test_empty_percentile_is_zero(self):
        assert LatencyHistogram().percentile(99) == 0.0

    def test_merge_dict_adds_buckets(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for _ in range(5):
            a.record(1e-3)
            b.record(2e-2)
        a.merge_dict(b.to_dict())
        assert a.total == 10
        assert a.sum_s == pytest.approx(5 * 1e-3 + 5 * 2e-2)
        assert a.max_s == 2e-2
        assert a.percentile(50) < a.percentile(90)

    def test_merge_dict_rejects_bucket_mismatch(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.merge_dict({"counts": [0, 1]})


# -- registry ----------------------------------------------------------------

class TestMetricsRegistry:
    def test_labeled_series_and_value(self):
        r = MetricsRegistry()
        r.counter("module_evals", module="PHI").inc(3)
        r.counter("module_evals", module="KillFlow").inc()
        r.counter("module_evals").inc(4)
        assert r.value("module_evals") == 4
        assert r.value("module_evals", module="PHI") == 3
        assert r.series("module_evals") == {"module=PHI": 3,
                                            "module=KillFlow": 1}

    def test_series_key_sorts_labels(self):
        assert (series_key("n", {"b": "2", "a": "1"})
                == "n{a=1,b=2}")
        assert series_key("n", {}) == "n"

    def test_gauge_high_water_mark(self):
        r = MetricsRegistry()
        g = r.gauge("queue_depth")
        g.inc(); g.inc(); g.dec(); g.inc()
        assert g.value == 2
        assert g.max == 2

    def test_snapshot_merge_is_commutative(self):
        def build(counts, lat):
            r = MetricsRegistry()
            r.counter("evals", module="A").inc(counts)
            r.gauge("depth").set(counts)
            for v in lat:
                r.histogram("lat", workload="w").record(v)
            return r

        a, b = build(3, [1e-3, 2e-3]), build(7, [5e-2])
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(a.snapshot()); ab.merge(b.snapshot())
        ba.merge(b.snapshot()); ba.merge(a.snapshot())
        assert ab.snapshot() == ba.snapshot()
        assert ab.value("evals", module="A") == 10
        hist = ab.snapshot()["histograms"]["lat{workload=w}"]
        assert hist["total"] == 3

    def test_snapshot_is_json_able(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.histogram("h").record(1e-3)
        json.dumps(r.snapshot())


# -- telemetry facade + golden report ----------------------------------------

class TestTelemetry:
    def test_facade_attribute_reads(self):
        tel = ServiceTelemetry(workers=2)
        tel.count("cache_hits", 3)
        tel.count("requests")
        tel.enqueue(); tel.enqueue(); tel.dequeue()
        assert tel.cache_hits == 3
        assert tel.requests == 1
        assert tel.queue_depth == 1
        assert tel.max_queue_depth == 2
        with pytest.raises(AttributeError):
            tel.no_such_counter

    def test_worker_metrics_merge_labeled_series(self):
        tel = ServiceTelemetry(workers=1)
        worker = MetricsRegistry()
        worker.counter("module_evals", module="PHI", workload="w").inc(5)
        tel.merge_worker_metrics(worker.snapshot())
        assert tel.registry.value("module_evals", module="PHI",
                                  workload="w") == 5
        snap = tel.snapshot()
        assert ("module_evals{module=PHI,workload=w}"
                in snap.metrics["counters"])

    def test_format_report_golden(self):
        tel = ServiceTelemetry(workers=2)
        for counter, n in (
                ("requests", 3), ("shards_dispatched", 2),
                ("shards_deduplicated", 1), ("shards_timed_out", 1),
                ("loops_computed", 4), ("loops_from_cache", 2),
                ("loops_incremental", 1), ("cache_hits", 5),
                ("cache_misses", 5), ("incremental_probes", 2),
                ("orchestrator_queries", 10), ("module_evals", 40)):
            tel.count(counter, n)
        tel.enqueue(); tel.enqueue(); tel.enqueue(); tel.dequeue()
        expected = "\n".join([
            "service telemetry",
            "-----------------",
            "  requests         3 (2 shards, 0 loop tasks dispatched "
            "(0 discovery), 1 deduplicated in-flight)",
            "  loops            4 computed, 2 from cache "
            "(1 via footprint revalidation), 0 conservative fallback",
            "  result cache     5 hits / 5 misses (hit rate 50.0%, "
            "2 incremental probes, 0 profile-roster reuses)",
            "  prepared modules 0 hits / 0 misses (hit rate 0.0%, "
            "0 evictions, setup 0.00s billed once)",
            "  robustness       1 shard timeouts, 0 worker failures",
            "  orchestrators    10 queries, 40 module evaluations",
            "  workers          2 (utilization 0.0%, "
            "busy 0.00s of 0.00s wall)",
            "  queue            max depth 3",
            "  shard latency    n=0     mean=    0.00ms "
            "p50=    0.00ms p90=    0.00ms p99=    0.00ms "
            "max=    0.00ms",
            "  loop latency     n=0     mean=    0.00ms "
            "p50=    0.00ms p90=    0.00ms p99=    0.00ms "
            "max=    0.00ms",
        ])
        assert format_report(tel.snapshot()) == expected


# -- end to end: traced batch through the scheduler --------------------------

def _traced_batch(sample_every=1):
    tracer = TraceContext(sample_every=sample_every)
    set_tracer(tracer)
    try:
        # Legacy shard mode: these tests pin the per-shard timeline
        # (the queue-mode loop_task timeline is covered in
        # test_service_queue.py).
        scheduler = BatchScheduler(workers=0, executor="inline",
                                   mode="shard")
        requests = [
            AnalysisRequest("w1", make_source(), system="scaf"),
            AnalysisRequest("w2", make_source(iters=80), system="scaf"),
        ]
        results = scheduler.run_batch(requests)
    finally:
        set_tracer(NOOP)
    return tracer.export(), results


class TestEndToEndTracing:
    def test_batch_trace_structure_and_categories(self):
        spans, results = _traced_batch()
        assert len(results) == 2
        assert validate_spans(spans) == []
        cats = {s["cat"] for s in spans}
        # Every layer shows up in one timeline: scheduler phases,
        # dispatch, the worker shard, per-loop analysis, profiling,
        # and the Orchestrator's query/module/premise recursion.
        for expected in ("batch", "dispatch", "shard", "loop",
                         "profile", "query", "module_eval"):
            assert expected in cats, f"missing category {expected}"
        index = span_index(spans)
        for s in spans:
            if s["cat"] == "shard":
                assert index[s["parent"]]["cat"] == "dispatch"
            if s["cat"] == "loop":
                assert index[s["parent"]]["cat"] == "shard"

    def test_attribution_reconciles_with_exported_artifact(
            self, tmp_path):
        spans, _ = _traced_batch()
        live = attribution_from_spans(spans)
        path = str(tmp_path / "trace.json")
        write_chrome_trace(spans, path)
        offline = attribution_from_spans(load_trace(path))
        assert offline.queries == live.queries
        assert offline.premises == live.premises
        assert len(offline.modules) == len(live.modules)
        for a, b in zip(live.modules, offline.modules):
            assert a.module == b.module
            assert a.evals == b.evals
            assert a.queries_resolved == b.queries_resolved
            assert a.improvements == b.improvements
            assert a.self_time_s == pytest.approx(b.self_time_s,
                                                  abs=1e-6)

    def test_sampling_thins_query_spans_only(self):
        full, _ = _traced_batch()
        sampled, _ = _traced_batch(sample_every=50)
        n_full = sum(1 for s in full if s["cat"] == "query")
        n_sampled = sum(1 for s in sampled if s["cat"] == "query")
        assert 0 < n_sampled < n_full
        # Infrastructure spans survive sampling untouched.
        for cat in ("batch", "shard", "loop"):
            assert (sum(1 for s in sampled if s["cat"] == cat)
                    == sum(1 for s in full if s["cat"] == cat))
        assert validate_spans(sampled) == []

    def test_untraced_run_records_nothing_and_matches(self):
        _, traced = _traced_batch()
        assert current_tracer() is NOOP
        scheduler = BatchScheduler(workers=0, executor="inline")
        plain = scheduler.run_batch(
            [AnalysisRequest("w1", make_source(), system="scaf"),
             AnalysisRequest("w2", make_source(iters=80),
                             system="scaf")])
        def identities(results):
            return [[a.identity() for a in answers]
                    for answers in results]
        assert identities(plain) == identities(traced)


# -- CLI surface -------------------------------------------------------------

class TestTraceCLI:
    @pytest.fixture
    def program(self, tmp_path):
        path = tmp_path / "program.ir"
        path.write_text(PROGRAM)
        return str(path)

    def test_analyze_trace_then_stats_check(self, program, tmp_path,
                                            capsys):
        trace = str(tmp_path / "out.json")
        assert main(["analyze", program, "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "per-module attribution" in out
        assert "trace:" in out and "perfetto" in out
        assert current_tracer() is NOOP      # CLI restored the no-op
        assert main(["stats", trace, "--check"]) == 0
        assert "structure valid" in capsys.readouterr().out

    def test_stats_json_schema(self, program, tmp_path, capsys):
        trace = str(tmp_path / "out.jsonl")
        assert main(["analyze", program, "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["stats", trace, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        for key in ("file", "spans", "processes", "valid", "problems",
                    "categories", "attribution"):
            assert key in doc
        assert doc["valid"] is True
        assert doc["spans"] > 0
        assert doc["attribution"]["queries"] > 0

    def test_stats_check_fails_on_broken_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps(
            {"id": "a", "parent": "ghost", "name": "x", "cat": "span",
             "start": 0.0, "dur": 1.0, "pid": 1, "tid": 1,
             "attrs": {}, "events": []}) + "\n")
        assert main(["stats", str(bad), "--check"]) == 1
        assert "unknown parent" in capsys.readouterr().err

    def test_stats_check_fails_on_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["stats", str(empty), "--check"]) == 1

    def test_trace_sample_flag(self, program, tmp_path, capsys):
        trace = str(tmp_path / "sampled.jsonl")
        assert main(["analyze", program, "--trace", trace,
                     "--trace-sample", "25"]) == 0
        capsys.readouterr()
        spans = load_jsonl(trace)
        assert validate_spans(spans) == []
        assert sum(1 for s in spans if s["cat"] == "query") > 0
