"""Property-based tests (hypothesis) for the arithmetic and algebraic
cores: affine disjointness, interval aliasing, assertion-option
algebra, integer wrapping, dominators, and the memory model."""

from hypothesis import given, settings, strategies as st

from repro.analysis import DominatorTree
from repro.ir import I16, I32, I8, IntType
from repro.ir.values import _wrap_int
from repro.modules.memory import interval_alias
from repro.modules.memory.scev_aa import affine_disjoint
from repro.query import (
    AliasResult,
    JoinPolicy,
    ModRefResult,
    OptionSet,
    QueryResponse,
    SpeculativeAssertion,
    TemporalRelation,
    join,
    option_consistent,
    precision,
)


# ---------------------------------------------------------------------------
# affine_disjoint vs brute force
# ---------------------------------------------------------------------------

_small = st.integers(min_value=-24, max_value=24)
_size = st.integers(min_value=1, max_value=8)
_relation = st.sampled_from(list(TemporalRelation))


def _overlaps(dc, s1, s2, size1, size2, relation, bound=40):
    """Brute-force: do the accesses overlap for some allowed (i, j)?"""
    for i in range(bound):
        for j in range(bound):
            if relation is TemporalRelation.SAME and i != j:
                continue
            if relation is TemporalRelation.BEFORE and not i < j:
                continue
            if relation is TemporalRelation.AFTER and not i > j:
                continue
            d = dc + s1 * i - s2 * j
            if -size2 < d < size1:
                return True
    return False


class TestAffineDisjoint:
    @given(dc=_small, s1=_small, s2=_small, size1=_size, size2=_size,
           relation=_relation)
    @settings(max_examples=400, deadline=None)
    def test_never_claims_disjoint_when_overlap_exists(
            self, dc, s1, s2, size1, size2, relation):
        """Soundness: affine_disjoint == True implies no overlap for
        any iterations (checked on a bounded window)."""
        if affine_disjoint(dc, s1, s2, size1, size2, relation):
            assert not _overlaps(dc, s1, s2, size1, size2, relation)

    @given(dc=_small, size1=_size, size2=_size)
    @settings(max_examples=200, deadline=None)
    def test_zero_stride_same_iteration_exact(self, dc, size1, size2):
        """With no strides, disjointness is exactly interval math."""
        disjoint = affine_disjoint(dc, 0, 0, size1, size2,
                                   TemporalRelation.SAME)
        assert disjoint == (dc >= size1 or dc <= -size2) == \
            (not (-size2 < dc < size1))

    @given(s=st.integers(min_value=1, max_value=16), size=_size)
    @settings(max_examples=200, deadline=None)
    def test_unit_pointer_stride_rule(self, s, size):
        """Same affine function, cross-iteration: disjoint iff the
        stride clears the access size."""
        disjoint = affine_disjoint(0, s, s, size, size,
                                   TemporalRelation.BEFORE)
        assert disjoint == (s >= size)

    @given(dc=_small, s1=_small, s2=_small, size1=_size, size2=_size)
    @settings(max_examples=200, deadline=None)
    def test_before_after_symmetry(self, dc, s1, s2, size1, size2):
        fwd = affine_disjoint(dc, s1, s2, size1, size2,
                              TemporalRelation.BEFORE)
        rev = affine_disjoint(-dc, s2, s1, size2, size1,
                              TemporalRelation.AFTER)
        assert fwd == rev

    def test_unknown_sizes_conservative(self):
        assert not affine_disjoint(100, 0, 0, 0, 4, TemporalRelation.SAME)
        assert not affine_disjoint(100, 0, 0, 4, 0, TemporalRelation.SAME)


class TestIntervalAlias:
    @given(o1=_small, s1=_size, o2=_small, s2=_size)
    @settings(max_examples=300, deadline=None)
    def test_matches_byte_sets(self, o1, s1, o2, s2):
        bytes1 = set(range(o1, o1 + s1))
        bytes2 = set(range(o2, o2 + s2))
        result = interval_alias(o1, s1, o2, s2)
        if result is AliasResult.NO_ALIAS:
            assert not (bytes1 & bytes2)
        elif result is AliasResult.MUST_ALIAS:
            assert bytes1 == bytes2
        elif result is AliasResult.SUB_ALIAS:
            assert bytes1 < bytes2 or bytes2 < bytes1 or bytes1 == bytes2
        else:
            assert bytes1 & bytes2  # partial overlap

    @given(o=_small, s=_size)
    @settings(max_examples=50, deadline=None)
    def test_self_must_alias(self, o, s):
        assert interval_alias(o, s, o, s) is AliasResult.MUST_ALIAS


# ---------------------------------------------------------------------------
# OptionSet algebra
# ---------------------------------------------------------------------------

_assertion = st.builds(
    SpeculativeAssertion,
    module_id=st.sampled_from(["a", "b", "c", "d"]),
    cost=st.floats(min_value=0, max_value=100, allow_nan=False),
    conflict_points=st.sets(st.sampled_from(["p", "q", "r"]),
                            max_size=2).map(frozenset),
)

_option = st.frozensets(_assertion, max_size=3)
_option_set = st.builds(OptionSet, st.lists(_option, max_size=3))


class TestOptionSetAlgebra:
    @given(s1=_option_set, s2=_option_set)
    @settings(max_examples=200, deadline=None)
    def test_union_commutative(self, s1, s2):
        assert (s1 | s2) == (s2 | s1)

    @given(s1=_option_set, s2=_option_set)
    @settings(max_examples=200, deadline=None)
    def test_cross_commutative(self, s1, s2):
        assert (s1 * s2) == (s2 * s1)

    @given(s1=_option_set, s2=_option_set, s3=_option_set)
    @settings(max_examples=100, deadline=None)
    def test_union_associative(self, s1, s2, s3):
        assert ((s1 | s2) | s3) == (s1 | (s2 | s3))

    @given(s=_option_set)
    @settings(max_examples=100, deadline=None)
    def test_free_is_cross_identity(self, s):
        crossed = s * OptionSet.free()
        # Options already consistent survive unchanged; inconsistent
        # input options are filtered by the cross.
        expected = OptionSet(o for o in s.options if option_consistent(o))
        assert crossed == expected

    @given(s1=_option_set, s2=_option_set)
    @settings(max_examples=200, deadline=None)
    def test_cross_options_always_consistent(self, s1, s2):
        for option in (s1 * s2).options:
            assert option_consistent(option)

    @given(s=_option_set)
    @settings(max_examples=100, deadline=None)
    def test_cheapest_is_minimum(self, s):
        if not s.is_empty:
            from repro.query import option_cost
            assert s.cheapest_cost() == min(option_cost(o)
                                            for o in s.options)


# ---------------------------------------------------------------------------
# join properties (Algorithm 2)
# ---------------------------------------------------------------------------

_alias_result = st.sampled_from(list(AliasResult))
_modref_result = st.sampled_from(list(ModRefResult))


def _response(result, options):
    return QueryResponse(result, options)


class TestJoinProperties:
    @given(r1=_alias_result, r2=_alias_result, s1=_option_set,
           s2=_option_set)
    @settings(max_examples=300, deadline=None)
    def test_alias_join_never_loses_precision(self, r1, r2, s1, s2):
        a = _response(r1, s1 | OptionSet.free())
        b = _response(r2, s2 | OptionSet.free())
        joined = join(JoinPolicy.CHEAPEST, a, b)
        assert precision(joined.result) >= max(precision(r1), precision(r2))

    @given(r1=_modref_result, r2=_modref_result)
    @settings(max_examples=100, deadline=None)
    def test_modref_join_never_loses_precision(self, r1, r2):
        a = QueryResponse.free(r1)
        b = QueryResponse.free(r2)
        joined = join(JoinPolicy.CHEAPEST, a, b)
        assert precision(joined.result) >= max(precision(r1), precision(r2))

    @given(r=_modref_result)
    @settings(max_examples=20, deadline=None)
    def test_join_with_conservative_is_identity(self, r):
        a = QueryResponse.free(r)
        conservative = QueryResponse.mod_ref()
        assert join(JoinPolicy.CHEAPEST, a, conservative).result == r
        assert join(JoinPolicy.CHEAPEST, conservative, a).result == r


# ---------------------------------------------------------------------------
# integer wrapping
# ---------------------------------------------------------------------------

class TestWrapIntProperties:
    @given(v=st.integers(min_value=-2**70, max_value=2**70),
           bits=st.sampled_from([1, 8, 16, 32, 64]))
    @settings(max_examples=300, deadline=None)
    def test_range(self, v, bits):
        w = _wrap_int(v, bits)
        if bits == 1:
            assert w in (0, 1)
        else:
            assert -(2 ** (bits - 1)) <= w < 2 ** (bits - 1)

    @given(v=st.integers(min_value=-2**70, max_value=2**70),
           bits=st.sampled_from([8, 16, 32, 64]))
    @settings(max_examples=300, deadline=None)
    def test_congruence(self, v, bits):
        assert (_wrap_int(v, bits) - v) % (2 ** bits) == 0

    @given(v=st.integers(), bits=st.sampled_from([8, 16, 32, 64]))
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, v, bits):
        once = _wrap_int(v, bits)
        assert _wrap_int(once, bits) == once


# ---------------------------------------------------------------------------
# dominators on random structured CFGs
# ---------------------------------------------------------------------------

@st.composite
def _random_cfg(draw):
    """A random single-entry CFG as textual IR with diamonds/loops."""
    n = draw(st.integers(min_value=2, max_value=8))
    edges = []
    for i in range(1, n):
        # Each block gets an edge from some earlier block (connected DAG),
        src = draw(st.integers(min_value=0, max_value=i - 1))
        edges.append((src, i))
    extra = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=n - 1),
                  st.integers(min_value=0, max_value=n - 1)),
        max_size=4))
    for s, d in extra:
        if d != 0:  # keep the entry predecessor-free
            edges.append((s, d))
    return n, sorted(set(edges))


def _build_cfg_module(n, edges):
    from repro.ir import (FunctionType, I32, IRBuilder, Module)
    m = Module("rand")
    fn = m.add_function("f", FunctionType(I32, []))
    blocks = [fn.add_block(f"b{i}") for i in range(n)]
    succs = {i: sorted({d for s, d in edges if s == i}) for i in range(n)}
    from repro.ir import Constant, I1
    for i, bb in enumerate(blocks):
        b = IRBuilder(bb)
        out = succs[i]
        if not out:
            b.ret(0)
        elif len(out) == 1:
            b.br(blocks[out[0]])
        elif len(out) == 2:
            cond = Constant(I1, 1)
            b.condbr(cond, blocks[out[0]], blocks[out[1]])
        else:
            b.switch(Constant(I32, 0), blocks[out[0]],
                     [(k, blocks[d]) for k, d in enumerate(out[1:])])
    return fn, blocks, succs


def _paths_all_pass(fn, blocks, succs, target_idx, through_idx):
    """Brute force: does every entry->target path pass 'through'?"""
    import itertools
    # DFS with cycle cut: enumerate simple paths.
    stack = [(0, {0})]
    while stack:
        node, seen = stack.pop()
        if node == target_idx:
            if through_idx not in seen:
                return False
            continue
        for nxt in succs[node]:
            if nxt not in seen:
                stack.append((nxt, seen | {nxt}))
    return True


class TestDominatorProperties:
    @given(cfg=_random_cfg())
    @settings(max_examples=60, deadline=None)
    def test_dominance_matches_path_enumeration(self, cfg):
        n, edges = cfg
        fn, blocks, succs = _build_cfg_module(n, edges)
        dt = DominatorTree.compute(fn)
        from repro.analysis import reachable_blocks
        reachable = reachable_blocks(fn)
        for ti, target in enumerate(blocks):
            if target not in reachable:
                continue
            for di, dom in enumerate(blocks):
                if dom not in reachable:
                    continue
                claimed = dt.dominates(dom, target)
                actual = _paths_all_pass(fn, blocks, succs, ti, di)
                assert claimed == actual, (edges, di, ti)

    @given(cfg=_random_cfg())
    @settings(max_examples=60, deadline=None)
    def test_entry_dominates_reachable(self, cfg):
        n, edges = cfg
        fn, blocks, succs = _build_cfg_module(n, edges)
        dt = DominatorTree.compute(fn)
        from repro.analysis import reachable_blocks
        for bb in reachable_blocks(fn):
            assert dt.dominates(blocks[0], bb)


# ---------------------------------------------------------------------------
# simulated memory
# ---------------------------------------------------------------------------

class TestMemoryProperties:
    @given(data=st.lists(st.tuples(st.integers(0, 63),
                                   st.integers(-2**31, 2**31 - 1)),
                         min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_read_back_last_write(self, data):
        from repro.interp import SimulatedMemory
        mem = SimulatedMemory()
        obj = mem.allocate(256, "heap")
        shadow = {}
        for slot, value in data:
            mem.write_value(obj.base + slot * 4, I32, value)
            shadow[slot] = value
        for slot, value in shadow.items():
            assert mem.read_value(obj.base + slot * 4, I32) == value

    @given(sizes=st.lists(st.integers(1, 64), min_size=2, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_allocations_disjoint(self, sizes):
        from repro.interp import SimulatedMemory
        mem = SimulatedMemory()
        objs = [mem.allocate(s, "heap") for s in sizes]
        for i, a in enumerate(objs):
            for b in objs[i + 1:]:
                assert a.end <= b.base or b.end <= a.base
