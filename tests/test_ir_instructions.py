"""Tests for instruction construction and classification."""

import pytest

from repro.ir import (
    AllocaInst,
    ArrayType,
    BasicBlock,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    Constant,
    F64,
    Function,
    FunctionType,
    GEPInst,
    GlobalVariable,
    I1,
    I32,
    I64,
    ICmpInst,
    LoadInst,
    PhiInst,
    PointerType,
    ReturnInst,
    SelectInst,
    StoreInst,
    StructType,
    SwitchInst,
    UnreachableInst,
    VOID,
    const_int,
    pointer_to,
)


def _ptr(name="p", ty=I32):
    g = GlobalVariable(name, ty)
    return g


class TestMemoryInstructions:
    def test_alloca_type(self):
        a = AllocaInst(I64)
        assert a.type == pointer_to(I64)
        assert a.allocated_type == I64
        assert not a.accesses_memory  # allocation itself is not an access

    def test_load(self):
        ld = LoadInst(_ptr())
        assert ld.type == I32
        assert ld.reads_memory and not ld.writes_memory
        assert ld.access_size == 4

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            LoadInst(const_int(0))

    def test_store(self):
        st = StoreInst(const_int(1), _ptr())
        assert st.type.is_void
        assert st.writes_memory and not st.reads_memory
        assert st.access_size == 4

    def test_store_requires_pointer(self):
        with pytest.raises(TypeError):
            StoreInst(const_int(1), const_int(2))


class TestGEP:
    def test_through_array(self):
        g = GlobalVariable("arr", ArrayType(I32, 10))
        gep = GEPInst(g, [const_int(0, 64), const_int(3, 64)])
        assert gep.type == pointer_to(I32)
        assert gep.constant_offset() == 12

    def test_through_struct(self):
        st = StructType("s", [I32, F64])
        g = GlobalVariable("g", st)
        gep = GEPInst(g, [const_int(0, 64), const_int(1, 32)])
        assert gep.type == pointer_to(F64)
        assert gep.constant_offset() == 4

    def test_leading_index_scales_by_pointee(self):
        g = GlobalVariable("d", F64)
        gep = GEPInst(g, [const_int(5, 64)])
        assert gep.constant_offset() == 40

    def test_non_constant_offset_is_none(self):
        g = GlobalVariable("arr", ArrayType(I32, 10))
        idx = LoadInst(GlobalVariable("i", I64))
        gep = GEPInst(g, [const_int(0, 64), idx])
        assert gep.constant_offset() is None

    def test_struct_index_must_be_constant(self):
        st = StructType("s2", [I32, I32])
        g = GlobalVariable("g2", st)
        idx = LoadInst(GlobalVariable("i", I32))
        with pytest.raises(TypeError):
            GEPInst(g, [const_int(0, 64), idx])

    def test_requires_index(self):
        with pytest.raises(ValueError):
            GEPInst(_ptr(), [])


class TestArithmetic:
    def test_binary_result_type(self):
        add = BinaryInst("add", const_int(1), const_int(2))
        assert add.type == I32
        assert add.opcode == "add"

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            BinaryInst("bogus", const_int(1), const_int(2))

    def test_icmp_returns_i1(self):
        cmp = ICmpInst("slt", const_int(1), const_int(2))
        assert cmp.type == I1

    def test_icmp_bad_predicate(self):
        with pytest.raises(ValueError):
            ICmpInst("lt", const_int(1), const_int(2))

    def test_cast(self):
        c = CastInst("sext", const_int(1), I64)
        assert c.type == I64
        with pytest.raises(ValueError):
            CastInst("resize", const_int(1), I64)

    def test_select_type_follows_arms(self):
        s = SelectInst(Constant(I1, 1), const_int(1, 64), const_int(2, 64))
        assert s.type == I64


class TestControlFlow:
    def test_branch_successors(self):
        bb = BasicBlock("target")
        br = BranchInst(bb)
        assert br.is_terminator
        assert br.successors == [bb]

    def test_condbr_successors(self):
        t, f = BasicBlock("t"), BasicBlock("f")
        br = CondBranchInst(Constant(I1, 1), t, f)
        assert br.successors == [t, f]

    def test_switch_successors(self):
        d, a, b = BasicBlock("d"), BasicBlock("a"), BasicBlock("b")
        sw = SwitchInst(const_int(1), d, [(1, a), (2, b)])
        assert sw.successors == [d, a, b]

    def test_return(self):
        r = ReturnInst(const_int(0))
        assert r.is_terminator
        assert r.successors == []
        assert ReturnInst().value is None

    def test_unreachable(self):
        assert UnreachableInst().is_terminator

    def test_phi_incoming(self):
        bb1, bb2 = BasicBlock("a"), BasicBlock("b")
        phi = PhiInst(I32, "x")
        phi.add_incoming(const_int(1), bb1)
        phi.add_incoming(const_int(2), bb2)
        assert phi.incoming_for(bb1).value == 1
        assert phi.incoming_for(bb2).value == 2
        with pytest.raises(KeyError):
            phi.incoming_for(BasicBlock("c"))


class TestCalls:
    def test_call_type_and_memory_effects(self):
        callee = Function("f", FunctionType(I32, [I32]))
        call = CallInst(callee, [const_int(1)])
        assert call.type == I32
        assert call.reads_memory and call.writes_memory

    def test_pure_callee(self):
        callee = Function("g", FunctionType(F64, []))
        callee.attributes.add("pure")
        call = CallInst(callee, [])
        assert not call.reads_memory and not call.writes_memory

    def test_readonly_callee(self):
        callee = Function("h", FunctionType(I32, []))
        callee.attributes.add("readonly")
        call = CallInst(callee, [])
        assert call.reads_memory and not call.writes_memory
