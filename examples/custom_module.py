"""Extending SCAF: writing and registering a new analysis module.

SCAF's headline design property is modularity: a new module only
implements the query interface and is handed to the Orchestrator —
no other module changes (§3.1).  This example adds two modules:

1. ``AlignmentAA`` — a small *memory analysis* module: two accesses
   whose pointers are congruent to different values modulo a power of
   two cannot overlap (a static cousin of pointer-residue
   speculation).  It folds in a poor man's interprocedural constant
   propagation: an argument with a single, constant callsite takes
   that constant's congruence class.
2. ``LoopBoundSpeculation`` — a toy *speculation* module: if a loop
   never iterated more than once during profiling, cross-iteration
   dependence queries are speculatively NoModRef, validated by a
   cheap trip-count check.

Run:  python examples/custom_module.py
"""

from repro import build_scaf
from repro.analysis import SCEVAddRec, affine_parts
from repro.core.module import AnalysisModule
from repro.query import (
    AliasQuery,
    AliasResult,
    ModRefQuery,
    ModRefResult,
    OptionSet,
    QueryResponse,
    SpeculativeAssertion,
)
from repro.clients import PDGClient, hot_loops
from repro.workloads import get_workload, prepare


class AlignmentAA(AnalysisModule):
    """NoAlias via incompatible pointer congruences (static)."""

    name = "alignment-aa"

    def _congruence(self, scev, m):
        """The value's congruence class mod ``m``, or None."""
        from repro.analysis import (SCEVAdd, SCEVConstant, SCEVMul,
                                    SCEVUnknown)
        from repro.ir import Argument, Constant
        if isinstance(scev, SCEVConstant):
            return scev.value % m
        if isinstance(scev, SCEVAddRec):
            if self._congruence(scev.step, m) == 0:
                return self._congruence(scev.base, m)
            return None
        if isinstance(scev, SCEVAdd):
            lhs = self._congruence(scev.lhs, m)
            rhs = self._congruence(scev.rhs, m)
            if lhs is None or rhs is None:
                return None
            return (lhs + rhs) % m
        if isinstance(scev, SCEVMul):
            lhs = self._congruence(scev.lhs, m)
            rhs = self._congruence(scev.rhs, m)
            if lhs == 0 or rhs == 0:
                return 0
            if lhs is None or rhs is None:
                return None
            return (lhs * rhs) % m
        if isinstance(scev, SCEVUnknown) and \
                isinstance(scev.value, Argument):
            # Single-callsite constant propagation.
            fn = scev.value.function
            callsites = self.context.callgraph.callsites_of(fn)
            if len(callsites) == 1:
                actual = callsites[0].args[scev.value.index]
                if isinstance(actual, Constant):
                    return int(actual.value) % m
        return None

    def alias(self, query: AliasQuery, resolver) -> QueryResponse:
        if query.desired is AliasResult.MUST_ALIAS:
            return QueryResponse.may_alias()
        fn = self._query_function(query)
        if fn is None or query.loop is None:
            return QueryResponse.may_alias()
        scev = self.context.scalar_evolution(fn)
        base1, off1 = scev.pointer_offset(query.loc1.pointer, query.loop)
        base2, off2 = scev.pointer_offset(query.loc2.pointer, query.loop)
        if base1 is not base2:
            return QueryResponse.may_alias()
        size = max(query.loc1.size, query.loc2.size)
        if size <= 0:
            return QueryResponse.may_alias()
        for m in (16, 8):
            if size > m:
                continue
            r1 = self._congruence(off1, m)
            r2 = self._congruence(off2, m)
            if r1 is None or r2 is None:
                continue
            gap = min((r1 - r2) % m, (r2 - r1) % m)
            if gap >= size:
                return QueryResponse.no_alias()
        return QueryResponse.may_alias()


class LoopBoundSpeculation(AnalysisModule):
    """Speculates that single-trip loops stay single-trip."""

    name = "loop-bound-spec"
    is_speculative = True
    average_assertion_cost = 1.0

    def modref(self, query: ModRefQuery, resolver) -> QueryResponse:
        loop = query.loop
        if loop is None or not query.relation.is_cross_iteration \
                or self.profiles is None:
            return QueryResponse.mod_ref()
        stats = self.profiles.loop_stats.get(loop)
        if stats is None or stats.invocations == 0:
            return QueryResponse.mod_ref()
        if stats.iterations != stats.invocations:
            return QueryResponse.mod_ref()  # iterated more than once
        assertion = SpeculativeAssertion(
            module_id=self.name,
            points=(loop.header,),
            cost=1.0 * stats.invocations,
            description=f"{loop.name} never re-iterates",
        )
        return QueryResponse(ModRefResult.NO_MOD_REF,
                             OptionSet.single(assertion))


#: A kernel built to defeat the stock ensemble but not the new
#: modules: a lane-structured array walked with symbolic (argument-
#: provided) lane offsets, plus an outer "retry" loop that only ever
#: runs once.
KERNEL = """
global @lanes : [256 x i8] = zeroinit
global @sum : i32 = 0
global @retry : i32 = 0

func @kernel(i64 %lane_a, i64 %lane_b) -> i32 {
entry:
  br %fill
fill:
  %fi = phi i64 [0, %entry], [%fi2, %fill]
  %f.slot = gep [256 x i8]* @lanes, i64 0, i64 %fi
  %fv = trunc i64 %fi to i8
  store i8 %fv, i8* %f.slot
  %fi2 = add i64 %fi, 1
  %fc = icmp slt i64 %fi2, 256
  condbr i1 %fc, %fill, %retry.head
retry.head:
  br %retry.loop
retry.loop:
  %r = phi i32 [0, %retry.head], [%r2, %retry.latch]
  store i32 %r, i32* @retry
  br %walk
walk:
  %i = phi i64 [0, %retry.loop], [%i2, %walk]
  %stride = mul i64 %i, 16
  %a.off = add i64 %stride, %lane_a
  %b.off = add i64 %stride, %lane_b
  %a.slot = gep [256 x i8]* @lanes, i64 0, i64 %a.off
  %av = load i8* %a.slot
  %b.slot = gep [256 x i8]* @lanes, i64 0, i64 %b.off
  %bv = add i8 %av, 1
  store i8 %bv, i8* %b.slot
  %s0 = load i32* @sum
  %a32 = sext i8 %av to i32
  %s1 = add i32 %s0, %a32
  store i32 %s1, i32* @sum
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 14
  condbr i1 %c, %walk, %retry.latch
retry.latch:
  %done = load i32* @retry
  %r2 = add i32 %r, 1
  %again = icmp slt i32 %r2, 1
  condbr i1 %again, %retry.loop, %exit
exit:
  ret i32 %r2
}

func @main() -> i32 {
entry:
  %r = call @kernel(i64 0, i64 8)
  ret i32 0
}
"""


def main():
    from repro.analysis import AnalysisContext
    from repro.ir import parse_module, verify_module
    from repro.profiling import run_profilers
    from repro.query import CFGView, ModRefQuery, TemporalRelation

    module = parse_module(KERNEL)
    verify_module(module)
    context = AnalysisContext(module)
    profiles = run_profilers(module, context)

    baseline = build_scaf(module, profiles, context)
    extended = build_scaf(
        module, profiles, context,
        extra_modules=[
            AlignmentAA(context, profiles),
            LoopBoundSpeculation(context, profiles),
        ])
    print(f"baseline modules: {len(baseline.coordinator.modules)}, "
          f"extended: {len(extended.coordinator.modules)}\n")

    fn = module.get_function("kernel")
    loops = context.loop_info(fn)
    walk = loops.loop_with_header(fn.get_block("walk"))
    retry = loops.loop_with_header(fn.get_block("retry.loop"))
    values = {i.name: i for i in fn.instructions() if i.name}
    cfg = CFGView.static(context, fn)

    # 1. AlignmentAA: lane 0 reads vs lane 8 writes, 16-byte stride,
    #    symbolic lane offsets.  Stock SCAF can only separate them
    #    *speculatively* (pointer residues, validation cost > 0);
    #    the alignment module proves it statically, for free.
    store_b = next(i for i in fn.instructions()
                   if i.opcode == "store" and i.pointer.name == "b.slot")
    q1 = ModRefQuery(values["av"], TemporalRelation.SAME, store_b,
                     walk, (), cfg)
    r_base = baseline.query(q1)
    r_ext = extended.query(q1)
    print("lane-read vs lane-write (intra-iteration):")
    print(f"  stock SCAF : {r_base.result.value} "
          f"(validation cost {r_base.cost():g})")
    print(f"  + alignment: {r_ext.result.value} "
          f"(validation cost {r_ext.cost():g})")

    # 2. LoopBoundSpeculation: the retry loop never re-iterated during
    #    profiling, so its cross-iteration accumulator dependence can
    #    be speculated away.
    store_sum = next(i for i in fn.instructions()
                     if i.opcode == "store" and i.pointer.ref == "@sum")
    q2 = ModRefQuery(store_sum, TemporalRelation.BEFORE, values["s0"],
                     retry, (), cfg)
    print("\nretry-loop carried accumulator (cross-iteration):")
    r_base = baseline.query(q2)
    r_ext = extended.query(q2)
    print(f"  stock SCAF : {r_base.result.value}")
    print(f"  + loop-bound-spec: {r_ext.result.value}"
          + (f" (assertions: "
             f"{sorted(r_ext.options.modules_involved())})"
             if r_ext.is_speculative else ""))


if __name__ == "__main__":
    main()
