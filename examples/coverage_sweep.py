"""Coverage sweep: Figure 8 in miniature, plus an Orchestrator-policy
ablation.

Sweeps every workload through CAF / confluence / SCAF / memory
speculation and prints the coverage ladder, then re-runs one workload
under different Orchestrator configurations (§3.3) to show the policy
knobs clients can turn: join policy (CHEAPEST vs ALL) and bailout
policy (BASE vs DEFINITE vs EXHAUSTIVE).

Run:  python examples/coverage_sweep.py
"""

from repro import (
    build_caf,
    build_confluence,
    build_memory_speculation,
    build_scaf,
)
from repro.clients import PDGClient, hot_loops, weighted_no_dep
from repro.core import BailoutPolicy, OrchestratorConfig
from repro.query import JoinPolicy
from repro.workloads import ALL_WORKLOADS, get_workload, prepare


def sweep():
    print(f"{'benchmark':16s} {'CAF':>7s} {'Confl':>7s} {'SCAF':>7s} "
          f"{'MemSpec':>8s}")
    for wl in ALL_WORKLOADS:
        p = prepare(wl)
        hot = hot_loops(p.profiles)
        row = []
        for system in (
            build_caf(p.module, p.context, p.profiles),
            build_confluence(p.module, p.profiles, p.context),
            build_scaf(p.module, p.profiles, p.context),
            build_memory_speculation(p.module, p.profiles, p.context),
        ):
            client = PDGClient(system)
            pdgs = [client.analyze_loop(h.loop) for h in hot]
            row.append(weighted_no_dep(hot, pdgs))
        print(f"{wl.name:16s} {row[0]:7.2f} {row[1]:7.2f} {row[2]:7.2f} "
              f"{row[3]:8.2f}")


def policy_ablation(name="544.nab"):
    print(f"\nOrchestrator policies on {name} (same modules, "
          "different client configuration):")
    p = prepare(get_workload(name))
    hot = hot_loops(p.profiles)
    configs = {
        "greedy+cheapest (paper default)": OrchestratorConfig(),
        "definite bailout": OrchestratorConfig(
            bailout_policy=BailoutPolicy.DEFINITE),
        "exhaustive+all-options": OrchestratorConfig(
            bailout_policy=BailoutPolicy.EXHAUSTIVE,
            join_policy=JoinPolicy.ALL),
    }
    for label, config in configs.items():
        system = build_scaf(p.module, p.profiles, p.context, config)
        client = PDGClient(system)
        pdgs = [client.analyze_loop(h.loop) for h in hot]
        stats = system.coordinator.stats
        print(f"  {label:32s} %NoDep={weighted_no_dep(hot, pdgs):6.2f}  "
              f"module-evals={sum(stats.module_evals.values()):6d}  "
              f"premises={stats.premise_queries:5d}")


if __name__ == "__main__":
    sweep()
    policy_ablation()
