"""Speculative execution end-to-end: analyze, validate, run, recover.

The full life of a speculative assertion (§4.2.1, §4.2.5):

1. profile the motivating-example kernel on its training input,
2. let SCAF remove the cross-iteration dependence (control-spec ×
   kill-flow),
3. *apply the transformation part*: insert the validation code the
   assertion requires,
4. execute on the training input — the checks are silent,
5. flip the input so the "rare" branch fires — the misspeculation
   trigger raises, and recovery re-executes non-speculatively.

Run:  python examples/speculative_execution.py
"""

from repro import build_scaf
from repro.analysis import AnalysisContext
from repro.clients import PDGClient, hot_loops
from repro.ir import parse_module, verify_module
from repro.profiling import run_profilers
from repro.transforms import execute_plan, harvest_assertions, instrument

KERNEL = """
global @a : i32 = 0
global @b : i32 = 0
global @rare_flag : i32 = 0

func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i.next, %latch]
  %rare = load i32* @rare_flag
  %c = icmp ne i32 %rare, 0
  condbr i1 %c, %rare.path, %els
rare.path:
  br %join
els:
  store i32 %i, i32* @a
  br %join
join:
  %av = load i32* @a
  %bv = add i32 %av, 1
  store i32 %bv, i32* @b
  %i.next = add i32 %i, 1
  store i32 %i.next, i32* @a
  br %latch
latch:
  %cond = icmp slt i32 %i.next, 100
  condbr i1 %cond, %loop, %exit
exit:
  %r = load i32* @b
  ret i32 %r
}
"""


def main():
    module = parse_module(KERNEL)
    verify_module(module)
    context = AnalysisContext(module)
    profiles = run_profilers(module, context)

    # Analyze the hot loop and harvest the assertions SCAF's
    # speculative removals rely on.
    scaf = build_scaf(module, profiles, context)
    hot = hot_loops(profiles)[0]
    pdg = PDGClient(scaf).analyze_loop(hot.loop)
    assertions = harvest_assertions(pdg)
    speculative = sum(1 for r in pdg.records if r.speculative)
    print(f"{hot.name}: {pdg.no_dep_count}/{pdg.total_queries} queries "
          f"resolved, {speculative} speculatively, "
          f"{len(assertions)} distinct assertions\n")
    for a in assertions:
        print(f"  will validate: {a!r}")

    # Apply the transformation part once, then run on both inputs.
    plan = instrument(module, assertions, profiles)
    result, misspec, runtime = execute_plan(plan, analysis=context)
    print(f"\ntraining input : result={result}, "
          f"misspeculated={misspec}, "
          f"checks executed={runtime.checks_executed} ({plan.describe()})")

    # Adversarial input: the rare branch now fires.
    module.get_global("rare_flag").initializer = 1
    result, misspec, runtime = execute_plan(plan, analysis=context)
    print(f"adversarial    : result={result}, misspeculated={misspec} "
          f"-> recovered by non-speculative re-execution")


if __name__ == "__main__":
    main()
