"""Parallelization planner: a realistic SCAF client (§3.4).

A DOALL parallelizer must remove every cross-iteration dependence of
a loop.  This client queries SCAF for the full loop PDG, then *plans*:
it gathers the speculative assertions its chosen responses rely on,
de-duplicates them (one control-speculation assertion often discharges
many dependences), checks for conflicts, totals the validation cost,
and decides whether the loop is speculatively DOALL-able — all before
transforming anything, exactly the planning workflow §3.4 motivates.

Run:  python examples/parallelization_planner.py
"""

from collections import Counter

from repro import build_scaf
from repro.clients import PDGClient, hot_loops
from repro.query import option_cost
from repro.workloads import get_workload, prepare


def plan_loop(system, hot):
    """Attempt a speculative DOALL plan for one hot loop."""
    client = PDGClient(system)
    pdg = client.analyze_loop(hot.loop)

    cross = [r for r in pdg.records if r.cross_iteration]
    blockers = [r for r in cross if not r.removed]
    removed = [r for r in cross if r.removed]

    # Gather the distinct assertions behind the speculative removals
    # (the same assertion frequently backs many dependences).
    assertions = set()
    for record in removed:
        if record.speculative:
            assertions.update(record.usable_options.cheapest())

    conflicts = [
        (a, b)
        for i, a in enumerate(sorted(assertions, key=repr))
        for b in sorted(assertions, key=repr)[i + 1:]
        if a.conflicts_with(b)
    ]

    print(f"== {hot.name} ({hot.time_fraction:.0%} of execution time, "
          f"{hot.stats.average_trip_count:.0f} iters/invocation)")
    print(f"   cross-iteration queries : {len(cross)}")
    print(f"   removed                 : {len(removed)} "
          f"({sum(1 for r in removed if r.speculative)} speculatively)")
    print(f"   blocking dependences    : {len(blockers)}")

    if blockers:
        kinds = Counter(
            f"{r.src.opcode}->{r.dst.opcode}" for r in blockers)
        worst = ", ".join(f"{k} x{n}" for k, n in kinds.most_common(3))
        print(f"   NOT DOALL-able: residual loop-carried deps ({worst})")
    else:
        total = sum(a.cost for a in assertions)
        by_module = Counter(a.module_id for a in assertions)
        print("   DOALL-able under speculation!")
        print(f"   distinct assertions to validate: {len(assertions)} "
              f"({dict(by_module)})")
        print(f"   total validation cost estimate : {total:g}")
        if conflicts:
            print(f"   WARNING: {len(conflicts)} conflicting assertion "
                  "pairs; the planner must drop one side")
    print()
    return blockers


#: A stencil kernel whose only cross-iteration obstacles are
#: speculative: the input row is read-only heap data behind a pointer
#: global, and the rare clamp path is profile-dead.  Under SCAF's
#: assertions the loop is fully DOALL-able.
DOALL_KERNEL = """
global @in_ptr : f64* = zeroinit
global @out_ptr : f64* = zeroinit
global @clamp_flag : i32 = 0
global @clamps : i32 = 0

declare @malloc(i64) -> i8*

func @main() -> i32 {
entry:
  %in.raw = call @malloc(i64 1040)
  %in.f = bitcast i8* %in.raw to f64*
  %in.base = gep f64* %in.f, i64 2
  store f64* %in.base, f64** @in_ptr
  %out.raw = call @malloc(i64 1040)
  %out.f = bitcast i8* %out.raw to f64*
  %out.base = gep f64* %out.f, i64 2
  store f64* %out.base, f64** @out_ptr
  br %fill
fill:
  %fi = phi i64 [0, %entry], [%fi2, %fill]
  %f.slot = gep f64* %in.base, i64 %fi
  %fv = sitofp i64 %fi to f64
  store f64 %fv, f64* %f.slot
  %fi2 = add i64 %fi, 1
  %fc = icmp slt i64 %fi2, 128
  condbr i1 %fc, %fill, %head
head:
  br %map
map:
  %i = phi i64 [0, %head], [%i2, %map.latch]
  %cf = load i32* @clamp_flag
  %rare = icmp ne i32 %cf, 0
  condbr i1 %rare, %clamp, %map.body
clamp:
  %cl = load i32* @clamps
  %cl2 = add i32 %cl, 1
  store i32 %cl2, i32* @clamps
  br %map.body
map.body:
  %in = load f64** @in_ptr
  %out = load f64** @out_ptr
  %src = gep f64* %in, i64 %i
  %x = load f64* %src
  %y = fmul f64 %x, 2.0
  %dst = gep f64* %out, i64 %i
  store f64 %y, f64* %dst
  br %map.latch
map.latch:
  %i2 = add i64 %i, 1
  %c = icmp slt i64 %i2, 128
  condbr i1 %c, %map, %exit
exit:
  ret i32 0
}
"""


def main():
    for name in ("175.vpr", "183.equake", "544.nab", "164.gzip"):
        prepared = prepare(get_workload(name))
        system = build_scaf(prepared.module, prepared.profiles,
                            prepared.context)
        print(f"### {name}\n")
        for hot in hot_loops(prepared.profiles):
            plan_loop(system, hot)

    # A loop that IS speculatively DOALL-able.
    from repro.analysis import AnalysisContext
    from repro.ir import parse_module
    from repro.profiling import run_profilers

    print("### doall-kernel (synthetic)\n")
    module = parse_module(DOALL_KERNEL)
    context = AnalysisContext(module)
    profiles = run_profilers(module, context)
    system = build_scaf(module, profiles, context)
    for hot in hot_loops(profiles):
        if hot.loop.header.name == "map":
            blockers = plan_loop(system, hot)
            assert not blockers


if __name__ == "__main__":
    main()
