"""Quickstart: the paper's motivating example, end to end.

Builds the Figure 1/5 kernel (a loop with a never-taken rare branch),
profiles it, and asks the question from §2.2.2: *is there a
cross-iteration flow from i3 to i2?*  CAF and composition-by-
confluence cannot disprove it; SCAF resolves it through the
control-speculation × kill-flow collaboration of Figure 6, returning
NoModRef predicated on a (practically free) control-flow assertion.

Run:  python examples/quickstart.py
"""

from repro import build_caf, build_confluence, build_scaf
from repro.analysis import AnalysisContext
from repro.ir import parse_module, verify_module
from repro.profiling import run_profilers
from repro.query import CFGView, ModRefQuery, TemporalRelation

MOTIVATING_EXAMPLE = """
global @a : i32 = 0
global @b : i32 = 0
global @rare_flag : i32 = 0

func @main() -> i32 {
entry:
  br %loop
loop:
  %i = phi i32 [0, %entry], [%i.next, %latch]
  %rare = load i32* @rare_flag
  %c = icmp ne i32 %rare, 0
  condbr i1 %c, %rare.path, %els
rare.path:
  br %join                       ; no writes to @a on this path
els:
  store i32 %i, i32* @a          ; i1: a = ...
  br %join
join:
  %av = load i32* @a             ; i2: b = foo(a) -- the read of a
  %bv = add i32 %av, 1
  store i32 %bv, i32* @b
  %i.next = add i32 %i, 1
  store i32 %i.next, i32* @a     ; i3: a = ...
  br %latch
latch:
  %cond = icmp slt i32 %i.next, 200
  condbr i1 %cond, %loop, %exit
exit:
  ret i32 0
}
"""


def main():
    # 1. Parse and verify the IR.
    module = parse_module(MOTIVATING_EXAMPLE)
    verify_module(module)
    context = AnalysisContext(module)

    # 2. Offline profiling run (the training input of §2.2).
    profiles = run_profilers(module, context)
    print(f"profiled {profiles.total_instructions} dynamic instructions")

    # 3. Locate the query subjects: i3 (the loop-end store to @a) and
    #    i2 (the load of @a feeding b).
    fn = module.get_function("main")
    loop = context.loop_info(fn).loops[0]
    join = fn.get_block("join")
    i3 = [i for i in join.instructions if i.opcode == "store"][-1]
    i2 = next(i for i in join.instructions if i.name == "av")
    query = ModRefQuery(i3, TemporalRelation.BEFORE, i2, loop, (),
                        CFGView.static(context, fn))
    print(f"\nquery: may {i3} (earlier iteration) reach {i2}?\n")

    # 4. Ask all three systems.
    for name, system in (
        ("CAF (static memory analysis)", build_caf(module, context,
                                                   profiles)),
        ("Composition by confluence", build_confluence(module, profiles,
                                                       context)),
        ("SCAF (composition by collaboration)", build_scaf(module, profiles,
                                                           context)),
    ):
        response = system.query(query)
        print(f"{name}:")
        print(f"  result: {response.result.value}")
        if response.is_speculative:
            option = response.options.cheapest()
            asserts = ", ".join(sorted(a.module_id for a in option))
            print(f"  speculative assertions: {asserts} "
                  f"(validation cost {sum(a.cost for a in option):g})")
        if system.last_contributors:
            print(f"  contributors: {sorted(system.last_contributors)}")
        print()


if __name__ == "__main__":
    main()
